"""JSON-RPC 2.0 serving front end over a warm :class:`Workspace`.

``p4bid serve`` speaks newline-delimited JSON-RPC 2.0 -- one request
object per line, one response per line -- over stdin/stdout by default,
or over TCP with ``--tcp HOST:PORT`` (one workspace per connection).
The protocol is editor-agnostic on purpose: an LSP shim, a CI harness,
or three lines of Python (see ``examples/serving_a_workspace.py``) can
drive it.

Methods (``params`` is always an object):

====================  =====================================================
``ping``              liveness probe; echoes ``params``
``open``              ``{source, filename?, name?}`` -- install revision 1
``edit``              ``{source}`` -- install the next revision
``check``             ``{infer?, lint?, include_ifc?, explain_flows?}`` --
                      full pipeline report over the warm state
``infer``             solved slot assignment + diagnostics
``pin``               ``{slot, label}`` (``label: null`` unpins)
``unsat_core``        conflicts with their unsatisfiable cores
``witnesses``         leak-path witnesses for the current conflicts
``lint``              static-analysis findings over the warm graph
``stats``             workspace/cache/solver counters snapshot
``save`` / ``load``   ``{path}`` -- persist / restore the solved state
``shutdown``          acknowledge and close the session
``policy.open``       ``{lattice?, subjects?, datasets?, events?,
                      revoke_every?, seed?, backend?}`` -- build the
                      deterministic compliance scenario + decision engine
``policy.decide``     ``{dataset, purpose, recipient, retention, kind?}``
                      or ``{request: uid}`` -- one permit/deny decision
``policy.explain``    same params -- decision plus shortest
                      policy-violation chains on a deny
``policy.grant``      ``{subject, label}`` -- consent grant/revocation
                      (``label`` parsed by the policy lattice; ``"bot"``
                      revokes everything)
``policy.replay``     ``{limit?, log?}`` -- replay the scenario stream,
                      returning throughput/latency and optionally the log
``policy.stats``      engine counters (decisions, permits, denies, ...)
====================  =====================================================

Error codes follow the JSON-RPC 2.0 spec: ``-32700`` parse error,
``-32600`` invalid request, ``-32601`` method not found, ``-32602``
invalid params, ``-32000`` workspace errors (no program open, unknown
slot, ...).
"""

from __future__ import annotations

import json
import socketserver
import sys
from typing import Any, Dict, Optional, TextIO

from repro.workspace.session import Workspace, WorkspaceError

PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
WORKSPACE_ERROR = -32000


class _RpcError(Exception):
    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


class WorkspaceServer:
    """One serving session: a warm workspace plus the RPC dispatch."""

    def __init__(
        self,
        *,
        lattice: str = "two-point",
        allow_declassification: bool = False,
        presolve: bool = False,
        backend: str = "graph",
        solver_workers: int = 1,
    ) -> None:
        self.options = {
            "lattice": lattice,
            "allow_declassification": allow_declassification,
            "presolve": presolve,
            "backend": backend,
            "solver_workers": solver_workers,
        }
        self.workspace = self._new_workspace()
        self.running = True
        #: The compliance session: ``(engine, events)`` after ``policy.open``.
        self._policy = None
        self._policy_next_uid = 0
        self._methods = {
            "ping": self._ping,
            "open": self._open,
            "edit": self._edit,
            "check": self._check,
            "infer": self._infer,
            "pin": self._pin,
            "unsat_core": self._unsat_core,
            "witnesses": self._witnesses,
            "lint": self._lint,
            "stats": self._stats,
            "save": self._save,
            "load": self._load,
            "shutdown": self._shutdown,
            "policy.open": self._policy_open,
            "policy.decide": self._policy_decide,
            "policy.explain": self._policy_explain,
            "policy.grant": self._policy_grant,
            "policy.replay": self._policy_replay,
            "policy.stats": self._policy_stats,
        }

    def _new_workspace(self) -> Workspace:
        return Workspace(
            self.options["lattice"],
            allow_declassification=self.options["allow_declassification"],
            presolve=self.options["presolve"],
            backend=self.options["backend"],
            solver_workers=self.options["solver_workers"],
        )

    # ------------------------------------------------------------------ dispatch

    def handle_line(self, line: str) -> Optional[str]:
        """Process one request line; returns the response line (or
        ``None`` for blank input and JSON-RPC notifications)."""
        line = line.strip()
        if not line:
            return None
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return self._encode_error(None, PARSE_ERROR, f"parse error: {exc}")
        if not isinstance(request, dict) or "method" not in request:
            return self._encode_error(
                request.get("id") if isinstance(request, dict) else None,
                INVALID_REQUEST,
                "invalid request: expected an object with a 'method' member",
            )
        request_id = request.get("id")
        method = request.get("method")
        params = request.get("params") or {}
        if not isinstance(params, dict):
            return self._encode_error(
                request_id, INVALID_PARAMS, "params must be an object"
            )
        handler = self._methods.get(method)
        if handler is None:
            return self._encode_error(
                request_id, METHOD_NOT_FOUND, f"unknown method {method!r}"
            )
        try:
            result = handler(params)
        except _RpcError as exc:
            return self._encode_error(request_id, exc.code, exc.message)
        except WorkspaceError as exc:
            return self._encode_error(request_id, WORKSPACE_ERROR, str(exc))
        if request_id is None:
            return None  # notification: no response
        return json.dumps({"jsonrpc": "2.0", "id": request_id, "result": result})

    @staticmethod
    def _encode_error(request_id, code: int, message: str) -> str:
        return json.dumps(
            {
                "jsonrpc": "2.0",
                "id": request_id,
                "error": {"code": code, "message": message},
            }
        )

    @staticmethod
    def _require(params: Dict[str, Any], key: str, kind=str):
        value = params.get(key)
        if not isinstance(value, kind):
            raise _RpcError(
                INVALID_PARAMS, f"missing or malformed {key!r} parameter"
            )
        return value

    # ------------------------------------------------------------------ methods

    def _ping(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True, "echo": params}

    def _open(self, params: Dict[str, Any]) -> Dict[str, Any]:
        source = self._require(params, "source")
        filename = params.get("filename") or "<rpc>"
        parsed = self.workspace.open(
            source, filename=filename, name=params.get("name")
        )
        return {
            "parsed": parsed,
            "revision": self.workspace.revision,
            "parse_error": self.workspace.parse_error,
        }

    def _edit(self, params: Dict[str, Any]) -> Dict[str, Any]:
        source = self._require(params, "source")
        parsed = self.workspace.edit(source)
        return {
            "parsed": parsed,
            "revision": self.workspace.revision,
            "parse_error": self.workspace.parse_error,
        }

    def _check(self, params: Dict[str, Any]) -> Dict[str, Any]:
        from repro.tool.report import report_to_dict

        report = self.workspace.check(
            include_ifc=bool(params.get("include_ifc", True)),
            infer=bool(params.get("infer", False)),
            lint=bool(params.get("lint", False)),
            explain_released_flows=bool(params.get("explain_flows", False)),
        )
        payload = report_to_dict(report)
        payload["revision"] = self.workspace.revision
        payload["regen"] = self.workspace.stats()["regen"]
        return payload

    def _infer(self, params: Dict[str, Any]) -> Dict[str, Any]:
        result = self.workspace.infer()
        lattice = self.workspace.lattice
        return {
            "ok": result.ok,
            "assignment": {
                site.hint: lattice.format_label(site.label)
                for site in result.inferred
            },
            "diagnostics": [str(diag) for diag in result.diagnostics],
            "constraints": result.constraint_count,
            "variables": result.variable_count,
        }

    def _pin(self, params: Dict[str, Any]) -> Dict[str, Any]:
        slot = self._require(params, "slot")
        label = params.get("label")
        if label is not None and not isinstance(label, str):
            raise _RpcError(INVALID_PARAMS, "label must be a string or null")
        try:
            self.workspace.pin(slot, label)
        except Exception as exc:
            if isinstance(exc, WorkspaceError):
                raise
            raise _RpcError(INVALID_PARAMS, str(exc))
        return {"pins": self.workspace.stats()["pins"]}

    def _unsat_core(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {"cores": self.workspace.unsat_cores()}

    def _witnesses(self, params: Dict[str, Any]) -> Dict[str, Any]:
        lattice = self.workspace.lattice
        return {
            "witnesses": [
                witness.describe(lattice) for witness in self.workspace.witnesses()
            ]
        }

    def _lint(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "findings": [
                {
                    "code": finding.code,
                    "severity": finding.severity.value,
                    "message": finding.message,
                    "span": str(finding.span),
                }
                for finding in self.workspace.lint()
            ]
        }

    def _stats(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return self.workspace.stats()

    def _save(self, params: Dict[str, Any]) -> Dict[str, Any]:
        path = self._require(params, "path")
        self.workspace.save(path)
        return {"saved": path, "revision": self.workspace.revision}

    def _load(self, params: Dict[str, Any]) -> Dict[str, Any]:
        path = self._require(params, "path")
        self.workspace = Workspace.load(path)
        return {
            "loaded": path,
            "revision": self.workspace.revision,
            "lattice": self.workspace.lattice.name,
        }

    def _shutdown(self, params: Dict[str, Any]) -> Dict[str, Any]:
        self.running = False
        return {"ok": True}

    # ------------------------------------------------------------- policy.*

    def _policy_session(self):
        if self._policy is None:
            raise _RpcError(
                WORKSPACE_ERROR, "no policy session open; call policy.open first"
            )
        return self._policy

    def _policy_open(self, params: Dict[str, Any]) -> Dict[str, Any]:
        from repro.lattice.base import LatticeError
        from repro.lattice.policy import PolicyLattice
        from repro.lattice.registry import get_lattice
        from repro.policy.engine import PolicyEngine
        from repro.policy.model import PolicyError
        from repro.synth.policy_traffic import policy_traffic, scenario_universe

        name = params.get("lattice", "policy-mini")
        if not isinstance(name, str):
            raise _RpcError(INVALID_PARAMS, "lattice must be a string")
        backend = params.get("backend", "auto")
        if backend not in ("auto", "packed", "graph"):
            raise _RpcError(
                INVALID_PARAMS, "backend must be 'auto', 'packed' or 'graph'"
            )
        sizes = {}
        for key, default in (
            ("subjects", 24),
            ("datasets", 12),
            ("events", 1000),
            ("revoke_every", 200),
            ("seed", 0),
        ):
            value = params.get(key, default)
            if not isinstance(value, int) or isinstance(value, bool):
                raise _RpcError(INVALID_PARAMS, f"{key} must be an integer")
            sizes[key] = value
        try:
            lattice = get_lattice(name)
            if not isinstance(lattice, PolicyLattice):
                raise _RpcError(
                    INVALID_PARAMS,
                    f"lattice {name!r} is not a policy lattice; use "
                    f"policy-mini or policy-P-R-T",
                )
            universe = scenario_universe(
                lattice,
                subjects=sizes["subjects"],
                datasets=sizes["datasets"],
                seed=sizes["seed"],
            )
            events = policy_traffic(
                universe,
                events=sizes["events"],
                revoke_every=sizes["revoke_every"],
                seed=sizes["seed"],
            )
            engine = PolicyEngine(universe, backend=backend)
        except _RpcError:
            raise
        except (PolicyError, ValueError, LatticeError) as exc:
            raise _RpcError(WORKSPACE_ERROR, f"policy.open failed: {exc}")
        self._policy = (engine, events)
        self._policy_next_uid = sizes["events"]
        return {
            "opened": True,
            "events": len(events),
            **engine.stats(),
        }

    def _policy_request(self, params: Dict[str, Any]):
        from repro.policy.model import Request

        engine, events = self._policy_session()
        if "request" in params:
            uid = params["request"]
            if not isinstance(uid, int) or isinstance(uid, bool):
                raise _RpcError(INVALID_PARAMS, "request must be an event uid")
            for event in events:
                if event.uid == uid and event.request is not None:
                    return engine, event.request
            raise _RpcError(
                INVALID_PARAMS, f"event {uid} is not a request of this stream"
            )
        fields = {}
        for key in ("dataset", "purpose", "recipient", "retention"):
            fields[key] = self._require(params, key)
        kind = params.get("kind", "adhoc")
        if not isinstance(kind, str):
            raise _RpcError(INVALID_PARAMS, "kind must be a string")
        uid = self._policy_next_uid
        self._policy_next_uid += 1
        return engine, Request(uid, kind=kind, **fields)

    def _policy_decide(self, params: Dict[str, Any]) -> Dict[str, Any]:
        from repro.policy.model import PolicyError

        engine, request = self._policy_request(params)
        try:
            decision = engine.decide(request)
        except PolicyError as exc:
            raise _RpcError(WORKSPACE_ERROR, str(exc))
        return decision.as_dict(engine)

    def _policy_explain(self, params: Dict[str, Any]) -> Dict[str, Any]:
        from repro.policy.model import PolicyError

        engine, request = self._policy_request(params)
        try:
            explanation = engine.explain(request)
        except PolicyError as exc:
            raise _RpcError(WORKSPACE_ERROR, str(exc))
        lattice = engine.universe.lattice
        return {
            "decision": explanation.decision.as_dict(engine),
            "violated_subjects": list(explanation.violated_subjects),
            "witnesses": [
                witness.describe(lattice).splitlines()
                for witness in explanation.witnesses
            ],
        }

    def _policy_grant(self, params: Dict[str, Any]) -> Dict[str, Any]:
        from repro.lattice.base import LatticeError
        from repro.policy.model import PolicyError

        engine, _ = self._policy_session()
        subject = self._require(params, "subject")
        label_text = self._require(params, "label")
        lattice = engine.universe.lattice
        try:
            bound = lattice.parse_label(label_text)
        except LatticeError as exc:
            raise _RpcError(INVALID_PARAMS, str(exc))
        try:
            affected = engine.set_grant(subject, bound)
        except PolicyError as exc:
            raise _RpcError(WORKSPACE_ERROR, str(exc))
        return {
            "subject": subject,
            "bound": lattice.format_label(bound),
            "recompiled_datasets": list(affected),
        }

    def _policy_replay(self, params: Dict[str, Any]) -> Dict[str, Any]:
        from repro.policy.stream import replay

        engine, events = self._policy_session()
        limit = params.get("limit")
        if limit is not None and (
            not isinstance(limit, int) or isinstance(limit, bool) or limit < 1
        ):
            raise _RpcError(INVALID_PARAMS, "limit must be a positive integer")
        report = replay(engine, events[:limit] if limit else events)
        payload = report.as_dict()
        if params.get("log"):
            payload["log"] = report.decision_log()
        return payload

    def _policy_stats(self, params: Dict[str, Any]) -> Dict[str, Any]:
        engine, events = self._policy_session()
        return {"events": len(events), **engine.stats()}


def serve_stdio(
    server: Optional[WorkspaceServer] = None,
    stdin: Optional[TextIO] = None,
    stdout: Optional[TextIO] = None,
    **options,
) -> int:
    """Serve newline-delimited JSON-RPC over stdin/stdout until EOF or
    ``shutdown``."""
    server = server or WorkspaceServer(**options)
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    for line in stdin:
        response = server.handle_line(line)
        if response is not None:
            stdout.write(response + "\n")
            stdout.flush()
        if not server.running:
            break
    return 0


def serve_tcp(host: str, port: int, **options) -> int:
    """Serve JSON-RPC over TCP; each connection gets its own workspace."""

    class Handler(socketserver.StreamRequestHandler):
        def handle(self) -> None:
            session = WorkspaceServer(**options)
            for raw in self.rfile:
                response = session.handle_line(raw.decode("utf-8"))
                if response is not None:
                    self.wfile.write(response.encode("utf-8") + b"\n")
                    self.wfile.flush()
                if not session.running:
                    break

    class Server(socketserver.ThreadingTCPServer):
        allow_reuse_address = True
        daemon_threads = True

    with Server((host, port), Handler) as srv:
        actual_host, actual_port = srv.server_address[:2]
        sys.stderr.write(f"p4bid serve: listening on {actual_host}:{actual_port}\n")
        sys.stderr.flush()
        try:
            srv.serve_forever()
        except KeyboardInterrupt:
            pass
    return 0
