"""JSON-RPC 2.0 serving front end over a warm :class:`Workspace`.

``p4bid serve`` speaks newline-delimited JSON-RPC 2.0 -- one request
object per line, one response per line -- over stdin/stdout by default,
or over TCP with ``--tcp HOST:PORT`` (one workspace per connection).
The protocol is editor-agnostic on purpose: an LSP shim, a CI harness,
or three lines of Python (see ``examples/serving_a_workspace.py``) can
drive it.

Methods (``params`` is always an object):

====================  =====================================================
``ping``              liveness probe; echoes ``params``
``open``              ``{source, filename?, name?}`` -- install revision 1
``edit``              ``{source}`` -- install the next revision
``check``             ``{infer?, lint?, include_ifc?, explain_flows?}`` --
                      full pipeline report over the warm state
``infer``             solved slot assignment + diagnostics
``pin``               ``{slot, label}`` (``label: null`` unpins)
``unsat_core``        conflicts with their unsatisfiable cores
``witnesses``         leak-path witnesses for the current conflicts
``lint``              static-analysis findings over the warm graph
``stats``             workspace/cache/solver counters snapshot
``save`` / ``load``   ``{path}`` -- persist / restore the solved state
``shutdown``          acknowledge and close the session
====================  =====================================================

Error codes follow the JSON-RPC 2.0 spec: ``-32700`` parse error,
``-32600`` invalid request, ``-32601`` method not found, ``-32602``
invalid params, ``-32000`` workspace errors (no program open, unknown
slot, ...).
"""

from __future__ import annotations

import json
import socketserver
import sys
from typing import Any, Dict, Optional, TextIO

from repro.workspace.session import Workspace, WorkspaceError

PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
WORKSPACE_ERROR = -32000


class _RpcError(Exception):
    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


class WorkspaceServer:
    """One serving session: a warm workspace plus the RPC dispatch."""

    def __init__(
        self,
        *,
        lattice: str = "two-point",
        allow_declassification: bool = False,
        presolve: bool = False,
        backend: str = "graph",
        solver_workers: int = 1,
    ) -> None:
        self.options = {
            "lattice": lattice,
            "allow_declassification": allow_declassification,
            "presolve": presolve,
            "backend": backend,
            "solver_workers": solver_workers,
        }
        self.workspace = self._new_workspace()
        self.running = True
        self._methods = {
            "ping": self._ping,
            "open": self._open,
            "edit": self._edit,
            "check": self._check,
            "infer": self._infer,
            "pin": self._pin,
            "unsat_core": self._unsat_core,
            "witnesses": self._witnesses,
            "lint": self._lint,
            "stats": self._stats,
            "save": self._save,
            "load": self._load,
            "shutdown": self._shutdown,
        }

    def _new_workspace(self) -> Workspace:
        return Workspace(
            self.options["lattice"],
            allow_declassification=self.options["allow_declassification"],
            presolve=self.options["presolve"],
            backend=self.options["backend"],
            solver_workers=self.options["solver_workers"],
        )

    # ------------------------------------------------------------------ dispatch

    def handle_line(self, line: str) -> Optional[str]:
        """Process one request line; returns the response line (or
        ``None`` for blank input and JSON-RPC notifications)."""
        line = line.strip()
        if not line:
            return None
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return self._encode_error(None, PARSE_ERROR, f"parse error: {exc}")
        if not isinstance(request, dict) or "method" not in request:
            return self._encode_error(
                request.get("id") if isinstance(request, dict) else None,
                INVALID_REQUEST,
                "invalid request: expected an object with a 'method' member",
            )
        request_id = request.get("id")
        method = request.get("method")
        params = request.get("params") or {}
        if not isinstance(params, dict):
            return self._encode_error(
                request_id, INVALID_PARAMS, "params must be an object"
            )
        handler = self._methods.get(method)
        if handler is None:
            return self._encode_error(
                request_id, METHOD_NOT_FOUND, f"unknown method {method!r}"
            )
        try:
            result = handler(params)
        except _RpcError as exc:
            return self._encode_error(request_id, exc.code, exc.message)
        except WorkspaceError as exc:
            return self._encode_error(request_id, WORKSPACE_ERROR, str(exc))
        if request_id is None:
            return None  # notification: no response
        return json.dumps({"jsonrpc": "2.0", "id": request_id, "result": result})

    @staticmethod
    def _encode_error(request_id, code: int, message: str) -> str:
        return json.dumps(
            {
                "jsonrpc": "2.0",
                "id": request_id,
                "error": {"code": code, "message": message},
            }
        )

    @staticmethod
    def _require(params: Dict[str, Any], key: str, kind=str):
        value = params.get(key)
        if not isinstance(value, kind):
            raise _RpcError(
                INVALID_PARAMS, f"missing or malformed {key!r} parameter"
            )
        return value

    # ------------------------------------------------------------------ methods

    def _ping(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True, "echo": params}

    def _open(self, params: Dict[str, Any]) -> Dict[str, Any]:
        source = self._require(params, "source")
        filename = params.get("filename") or "<rpc>"
        parsed = self.workspace.open(
            source, filename=filename, name=params.get("name")
        )
        return {
            "parsed": parsed,
            "revision": self.workspace.revision,
            "parse_error": self.workspace.parse_error,
        }

    def _edit(self, params: Dict[str, Any]) -> Dict[str, Any]:
        source = self._require(params, "source")
        parsed = self.workspace.edit(source)
        return {
            "parsed": parsed,
            "revision": self.workspace.revision,
            "parse_error": self.workspace.parse_error,
        }

    def _check(self, params: Dict[str, Any]) -> Dict[str, Any]:
        from repro.tool.report import report_to_dict

        report = self.workspace.check(
            include_ifc=bool(params.get("include_ifc", True)),
            infer=bool(params.get("infer", False)),
            lint=bool(params.get("lint", False)),
            explain_released_flows=bool(params.get("explain_flows", False)),
        )
        payload = report_to_dict(report)
        payload["revision"] = self.workspace.revision
        payload["regen"] = self.workspace.stats()["regen"]
        return payload

    def _infer(self, params: Dict[str, Any]) -> Dict[str, Any]:
        result = self.workspace.infer()
        lattice = self.workspace.lattice
        return {
            "ok": result.ok,
            "assignment": {
                site.hint: lattice.format_label(site.label)
                for site in result.inferred
            },
            "diagnostics": [str(diag) for diag in result.diagnostics],
            "constraints": result.constraint_count,
            "variables": result.variable_count,
        }

    def _pin(self, params: Dict[str, Any]) -> Dict[str, Any]:
        slot = self._require(params, "slot")
        label = params.get("label")
        if label is not None and not isinstance(label, str):
            raise _RpcError(INVALID_PARAMS, "label must be a string or null")
        try:
            self.workspace.pin(slot, label)
        except Exception as exc:
            if isinstance(exc, WorkspaceError):
                raise
            raise _RpcError(INVALID_PARAMS, str(exc))
        return {"pins": self.workspace.stats()["pins"]}

    def _unsat_core(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {"cores": self.workspace.unsat_cores()}

    def _witnesses(self, params: Dict[str, Any]) -> Dict[str, Any]:
        lattice = self.workspace.lattice
        return {
            "witnesses": [
                witness.describe(lattice) for witness in self.workspace.witnesses()
            ]
        }

    def _lint(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "findings": [
                {
                    "code": finding.code,
                    "severity": finding.severity.value,
                    "message": finding.message,
                    "span": str(finding.span),
                }
                for finding in self.workspace.lint()
            ]
        }

    def _stats(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return self.workspace.stats()

    def _save(self, params: Dict[str, Any]) -> Dict[str, Any]:
        path = self._require(params, "path")
        self.workspace.save(path)
        return {"saved": path, "revision": self.workspace.revision}

    def _load(self, params: Dict[str, Any]) -> Dict[str, Any]:
        path = self._require(params, "path")
        self.workspace = Workspace.load(path)
        return {
            "loaded": path,
            "revision": self.workspace.revision,
            "lattice": self.workspace.lattice.name,
        }

    def _shutdown(self, params: Dict[str, Any]) -> Dict[str, Any]:
        self.running = False
        return {"ok": True}


def serve_stdio(
    server: Optional[WorkspaceServer] = None,
    stdin: Optional[TextIO] = None,
    stdout: Optional[TextIO] = None,
    **options,
) -> int:
    """Serve newline-delimited JSON-RPC over stdin/stdout until EOF or
    ``shutdown``."""
    server = server or WorkspaceServer(**options)
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    for line in stdin:
        response = server.handle_line(line)
        if response is not None:
            stdout.write(response + "\n")
            stdout.flush()
        if not server.running:
            break
    return 0


def serve_tcp(host: str, port: int, **options) -> int:
    """Serve JSON-RPC over TCP; each connection gets its own workspace."""

    class Handler(socketserver.StreamRequestHandler):
        def handle(self) -> None:
            session = WorkspaceServer(**options)
            for raw in self.rfile:
                response = session.handle_line(raw.decode("utf-8"))
                if response is not None:
                    self.wfile.write(response.encode("utf-8") + b"\n")
                    self.wfile.flush()
                if not session.running:
                    break

    class Server(socketserver.ThreadingTCPServer):
        allow_reuse_address = True
        daemon_threads = True

    with Server((host, port), Handler) as srv:
        actual_host, actual_port = srv.server_address[:2]
        sys.stderr.write(f"p4bid serve: listening on {actual_host}:{actual_port}\n")
        sys.stderr.flush()
        try:
            srv.serve_forever()
        except KeyboardInterrupt:
            pass
    return 0
