"""Evaluation of binary and unary operations on runtime values.

The evaluation function ``E(⊕, v1, v2)`` of the paper is deterministic:
equal inputs give equal outputs, which the non-interference proof (and our
differential harness) relies on.  Fixed-width arithmetic wraps modulo
``2^width``; division and modulo by zero produce zero, the deterministic
choice BMv2 makes for its undefined cases.
"""

from __future__ import annotations

from typing import Optional

from repro.semantics.errors import EvaluationError
from repro.semantics.values import BoolValue, IntValue, Value


def _numeric(value: Value, op: str) -> IntValue:
    if isinstance(value, IntValue):
        return value
    if isinstance(value, BoolValue):
        return IntValue(int(value.value), 1)
    raise EvaluationError(f"operator {op!r} applied to non-numeric {value.describe()}")


def _result_width(left: IntValue, right: IntValue) -> Optional[int]:
    if left.width is not None:
        return left.width
    return right.width


def eval_binary(op: str, left: Value, right: Value) -> Value:
    """``E(⊕, v1, v2)``."""
    if op in ("&&", "||"):
        if not isinstance(left, BoolValue) or not isinstance(right, BoolValue):
            raise EvaluationError(f"operator {op!r} needs boolean operands")
        if op == "&&":
            return BoolValue(left.value and right.value)
        return BoolValue(left.value or right.value)

    if op in ("==", "!="):
        if isinstance(left, BoolValue) and isinstance(right, BoolValue):
            equal = left.value == right.value
        else:
            equal = _numeric(left, op).value == _numeric(right, op).value
        return BoolValue(equal if op == "==" else not equal)

    left_num = _numeric(left, op)
    right_num = _numeric(right, op)
    a, b = left_num.value, right_num.value
    width = _result_width(left_num, right_num)

    if op in ("<", ">", "<=", ">="):
        table = {"<": a < b, ">": a > b, "<=": a <= b, ">=": a >= b}
        return BoolValue(table[op])
    if op == "+":
        return IntValue(a + b, width)
    if op == "-":
        return IntValue(a - b, width)
    if op == "*":
        return IntValue(a * b, width)
    if op == "/":
        return IntValue(0 if b == 0 else a // b, width)
    if op == "%":
        return IntValue(0 if b == 0 else a % b, width)
    if op == "&":
        return IntValue(a & b, width)
    if op == "|":
        return IntValue(a | b, width)
    if op == "^":
        return IntValue(a ^ b, width)
    if op == "<<":
        return IntValue(a << min(b, 1 << 10), width)
    if op == ">>":
        return IntValue(a >> min(b, 1 << 10), width)
    raise EvaluationError(f"unknown binary operator {op!r}")


def eval_unary(op: str, operand: Value) -> Value:
    """Evaluate a unary operation."""
    if op == "!":
        if not isinstance(operand, BoolValue):
            raise EvaluationError("operator '!' needs a boolean operand")
        return BoolValue(not operand.value)
    value = _numeric(operand, op)
    if op == "-":
        return IntValue(-value.value, value.width)
    if op == "~":
        if value.width is None:
            return IntValue(~value.value, None)
        return IntValue(~value.value, value.width)
    raise EvaluationError(f"unknown unary operator {op!r}")
