"""The big-step interpreter for the Core P4 fragment.

:class:`Evaluator` threads the store μ and the control plane ``C`` through
the evaluation of expressions, statements, and declarations.  Closures and
table values capture their declaring environment, function calls use the
copy-in/copy-out discipline of Appendix H, and table application evaluates
the keys, consults ``C``, and invokes the matched action with both its
declaration-time arguments and the control-plane-supplied ones.

:func:`run_control` is the convenience entry point used by examples and by
the non-interference harness: it evaluates a whole program's declarations,
then runs one control block on caller-supplied parameter values, returning
the final values of every parameter (the "output packet").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.semantics.control_plane import ControlPlane
from repro.semantics.errors import EvaluationError
from repro.semantics.lvalues import (
    LField,
    LIndex,
    LValue,
    LVar,
    read_lvalue,
    write_lvalue,
    zero_like,
)
from repro.semantics.operators import eval_binary, eval_unary
from repro.semantics.signals import Signal
from repro.semantics.store import Environment, Store
from repro.semantics.values import (
    BoolValue,
    ClosureValue,
    HeaderValue,
    IntValue,
    MatchKindValue,
    RecordValue,
    StackValue,
    TableValue,
    UnitValue,
    Value,
    init_value,
)
from repro.syntax import declarations as d
from repro.syntax import expressions as e
from repro.syntax import statements as s
from repro.syntax.declarations import Direction
from repro.syntax.program import Program
from repro.syntax.types import HeaderType, MatchKindType, RecordType, Type
from repro.typechecker.checker import DEFAULT_MATCH_KINDS

#: Safety valve against runaway evaluation (the fragment has no loops, but a
#: malformed synthetic program could still recurse through closures).
MAX_CALL_DEPTH = 256


@dataclass
class ControlRun:
    """The result of running one control block."""

    #: Final values of every control parameter, keyed by parameter name.
    parameters: Dict[str, Value]
    signal: Signal
    store_size: int = 0


class Evaluator:
    """Evaluates programs of the Core P4 fragment."""

    def __init__(self, control_plane: Optional[ControlPlane] = None) -> None:
        self.store = Store()
        self.control_plane = control_plane or ControlPlane()
        self._type_definitions: Dict[str, Type] = {}
        self._call_depth = 0

    # ------------------------------------------------------------------ type environment

    def lookup_type(self, name: str) -> Optional[Type]:
        return self._type_definitions.get(name)

    def default_value(self, ty: Type) -> Value:
        return init_value(ty, self.lookup_type)

    # ------------------------------------------------------------------ declarations

    def exec_declaration(self, decl: d.Declaration, env: Environment) -> None:
        if isinstance(decl, d.VarDecl):
            if decl.init is not None:
                value = self.eval_expression(decl.init, env)
            else:
                value = self.default_value(decl.ty.ty)
            env.bind(decl.name, self.store.fresh(value))
            return
        if isinstance(decl, d.TypedefDecl):
            self._type_definitions[decl.name] = decl.ty.ty
            return
        if isinstance(decl, d.HeaderDecl):
            self._type_definitions[decl.name] = HeaderType(decl.fields)
            return
        if isinstance(decl, d.StructDecl):
            self._type_definitions[decl.name] = RecordType(decl.fields)
            return
        if isinstance(decl, d.MatchKindDecl):
            self._type_definitions["match_kind"] = MatchKindType(decl.members)
            for member in decl.members:
                env.bind(member, self.store.fresh(MatchKindValue(member)))
            return
        if isinstance(decl, d.FunctionDecl):
            env.bind(decl.name, self.store.fresh(ClosureValue(env, decl)))
            return
        if isinstance(decl, d.TableDecl):
            env.bind(decl.name, self.store.fresh(TableValue(env, decl)))
            return
        raise EvaluationError(f"cannot evaluate declaration {decl.describe()}", decl.span)

    # ------------------------------------------------------------------ statements

    def exec_statement(self, stmt: s.Statement, env: Environment) -> Signal:
        if isinstance(stmt, s.Block):
            scope = env.child()
            for inner in stmt.statements:
                signal = self.exec_statement(inner, scope)
                if not signal.is_cont:
                    return signal
            return Signal.cont()
        if isinstance(stmt, s.Assign):
            lvalue = self.eval_lvalue(stmt.target, env)
            value = self.eval_expression(stmt.value, env)
            write_lvalue(lvalue, value, env, self.store)
            return Signal.cont()
        if isinstance(stmt, s.If):
            condition = self.eval_expression(stmt.condition, env)
            if not isinstance(condition, BoolValue):
                raise EvaluationError(
                    f"if condition evaluated to {condition.describe()}", stmt.span
                )
            branch = stmt.then_branch if condition.value else stmt.else_branch
            return self.exec_statement(branch, env)
        if isinstance(stmt, s.CallStmt):
            return self._exec_call_statement(stmt.call, env)
        if isinstance(stmt, s.Exit):
            return Signal.exit()
        if isinstance(stmt, s.Return):
            if stmt.value is None:
                return Signal.ret(UnitValue())
            return Signal.ret(self.eval_expression(stmt.value, env))
        if isinstance(stmt, s.VarDeclStmt):
            self.exec_declaration(stmt.declaration, env)
            return Signal.cont()
        raise EvaluationError(f"cannot evaluate statement {stmt.describe()}", stmt.span)

    def _exec_call_statement(self, call: e.Call, env: Environment) -> Signal:
        callee = self.eval_expression(call.callee, env)
        if isinstance(callee, TableValue):
            if call.arguments:
                raise EvaluationError("table application takes no arguments", call.span)
            return self.apply_table(callee, env)
        if isinstance(callee, ClosureValue):
            signal, _ = self.call_closure(callee, call.arguments, env)
            # A return terminates only the callee; exit propagates.
            if signal.is_exit:
                return signal
            return Signal.cont()
        raise EvaluationError(
            f"{call.callee.describe()!r} is not callable (value {callee.describe()})",
            call.span,
        )

    # ------------------------------------------------------------------ expressions

    def eval_expression(self, expr: e.Expression, env: Environment) -> Value:
        if isinstance(expr, e.BoolLiteral):
            return BoolValue(expr.value)
        if isinstance(expr, e.IntLiteral):
            return IntValue(expr.value, expr.width)
        if isinstance(expr, e.Var):
            return self.store.read(env.require(expr.name))
        if isinstance(expr, e.BinaryOp):
            left = self.eval_expression(expr.left, env)
            right = self.eval_expression(expr.right, env)
            return eval_binary(expr.op, left, right)
        if isinstance(expr, e.UnaryOp):
            return eval_unary(expr.op, self.eval_expression(expr.operand, env))
        if isinstance(expr, e.RecordLiteral):
            fields = tuple(
                (name, self.eval_expression(value, env)) for name, value in expr.fields
            )
            return RecordValue(fields)
        if isinstance(expr, e.FieldAccess):
            target = self.eval_expression(expr.target, env)
            if not isinstance(target, (RecordValue, HeaderValue)):
                raise EvaluationError(
                    f"cannot project field {expr.field_name!r} from "
                    f"{target.describe()}",
                    expr.span,
                )
            value = target.get(expr.field_name)
            if value is None:
                raise EvaluationError(
                    f"value {target.describe()} has no field {expr.field_name!r}",
                    expr.span,
                )
            return value
        if isinstance(expr, e.Index):
            array = self.eval_expression(expr.array, env)
            index = self.eval_expression(expr.index, env)
            if not isinstance(array, StackValue):
                raise EvaluationError(f"cannot index into {array.describe()}", expr.span)
            if not isinstance(index, IntValue):
                raise EvaluationError(
                    f"array index evaluated to {index.describe()}", expr.span
                )
            element = array.get(index.value)
            if element is None:
                # havoc(τ): deterministic zeroed element
                return zero_like(array.elements[0]) if array.elements else UnitValue()
            return element
        if isinstance(expr, e.Call):
            # declassify/endorse are run-time identities (see repro.ifc.declassify).
            if (
                isinstance(expr.callee, e.Var)
                and expr.callee.name in ("declassify", "endorse")
                and env.lookup(expr.callee.name) is None
            ):
                if len(expr.arguments) != 1:
                    raise EvaluationError(
                        f"{expr.callee.name} takes exactly one argument", expr.span
                    )
                return self.eval_expression(expr.arguments[0], env)
            callee = self.eval_expression(expr.callee, env)
            if isinstance(callee, TableValue):
                # tables in expression position are rejected by the type
                # checker; evaluate as a statement-style application anyway.
                self.apply_table(callee, env)
                return UnitValue()
            if not isinstance(callee, ClosureValue):
                raise EvaluationError(
                    f"{expr.callee.describe()!r} is not callable", expr.span
                )
            signal, _ = self.call_closure(callee, expr.arguments, env)
            if signal.is_return and signal.value is not None:
                return signal.value
            return UnitValue()
        raise EvaluationError(f"cannot evaluate expression {expr.describe()}", expr.span)

    # ------------------------------------------------------------------ l-values

    def eval_lvalue(self, expr: e.Expression, env: Environment) -> LValue:
        """Evaluate an expression to an l-value (Appendix F)."""
        if isinstance(expr, e.Var):
            return LVar(expr.name)
        if isinstance(expr, e.FieldAccess):
            return LField(self.eval_lvalue(expr.target, env), expr.field_name)
        if isinstance(expr, e.Index):
            base = self.eval_lvalue(expr.array, env)
            index = self.eval_expression(expr.index, env)
            if not isinstance(index, IntValue):
                raise EvaluationError(
                    f"array index evaluated to {index.describe()}", expr.span
                )
            return LIndex(base, index.value)
        raise EvaluationError(
            f"{expr.describe()!r} is not a valid l-value", expr.span
        )

    # ------------------------------------------------------------------ calls (copy-in / copy-out)

    def call_closure(
        self,
        closure: ClosureValue,
        arguments: Sequence[e.Expression],
        caller_env: Environment,
        control_args: Optional[Dict[str, Value]] = None,
    ) -> Tuple[Signal, Optional[Value]]:
        """Invoke a function/action closure.

        ``arguments`` are the caller-supplied (directional) argument
        expressions, evaluated in the caller's environment; ``control_args``
        supplies values for directionless parameters when the call comes
        from a table match.  Returns the final signal and the return value
        (if any).
        """
        self._call_depth += 1
        if self._call_depth > MAX_CALL_DEPTH:
            self._call_depth -= 1
            raise EvaluationError("call depth exceeded (recursion is not allowed in P4)")
        try:
            decl = closure.declaration
            body_env = closure.environment.child()
            copy_out: List[Tuple[LValue, int]] = []
            positional = list(arguments)
            control_args = control_args or {}
            for param in decl.params:
                value, out_target = self._bind_argument(
                    param, positional, control_args, caller_env
                )
                location = self.store.fresh(value)
                body_env.bind(param.name, location)
                if out_target is not None:
                    copy_out.append((out_target, location))
            signal = self.exec_statement(decl.body, body_env)
            for lvalue, location in copy_out:
                write_lvalue(lvalue, self.store.read(location), caller_env, self.store)
            return_value = signal.value if signal.is_return else None
            return signal, return_value
        finally:
            self._call_depth -= 1

    def _bind_argument(
        self,
        param: d.Param,
        positional: List[e.Expression],
        control_args: Dict[str, Value],
        caller_env: Environment,
    ) -> Tuple[Value, Optional[LValue]]:
        """Copy-in one parameter; returns its initial value and, for
        writable parameters, the caller l-value to copy back out to."""
        direction = param.direction
        if positional:
            argument = positional.pop(0)
            if direction in (Direction.INOUT, Direction.OUT):
                lvalue = self.eval_lvalue(argument, caller_env)
                if direction is Direction.OUT:
                    return self.default_value(param.ty.ty), lvalue
                return read_lvalue(lvalue, caller_env, self.store), lvalue
            return self.eval_expression(argument, caller_env), None
        if param.name in control_args:
            return control_args[param.name], None
        # Unsupplied directionless parameter: default-initialised, mirroring
        # a controller that installed no argument.
        return self.default_value(param.ty.ty), None

    # ------------------------------------------------------------------ tables

    def apply_table(self, table: TableValue, caller_env: Environment) -> Signal:
        """Apply a match-action table (the ⇓_match rule plus action call)."""
        decl = table.declaration
        table_env = table.environment
        key_values = [self.eval_expression(key.expression, table_env) for key in decl.keys]
        declared_actions = [ref.name for ref in decl.actions]
        resolved = self.control_plane.resolve(decl.name, key_values, declared_actions)
        if resolved is None:
            return Signal.cont()
        action_ref = next(
            (ref for ref in decl.actions if ref.name == resolved.action), None
        )
        if action_ref is None:
            raise EvaluationError(
                f"control plane chose action {resolved.action!r} which table "
                f"{decl.name!r} does not declare"
            )
        location = table_env.lookup(action_ref.name)
        if location is None:
            raise EvaluationError(
                f"table {decl.name!r} refers to undeclared action {action_ref.name!r}"
            )
        closure = self.store.read(location)
        if not isinstance(closure, ClosureValue):
            raise EvaluationError(
                f"table action {action_ref.name!r} is not an action closure"
            )
        signal, _ = self.call_closure(
            closure, action_ref.arguments, table_env, resolved.control_args
        )
        if signal.is_exit:
            return signal
        return Signal.cont()


def run_control(
    program: Program,
    inputs: Optional[Dict[str, Value]] = None,
    *,
    control_name: Optional[str] = None,
    control_plane: Optional[ControlPlane] = None,
) -> ControlRun:
    """Evaluate ``program`` and run one of its control blocks.

    ``inputs`` supplies initial values for the control's parameters (missing
    parameters are default-initialised from their declared types), and the
    returned :class:`ControlRun` reports every parameter's final value --
    for packet-processing programs these are the output headers.
    """
    evaluator = Evaluator(control_plane)
    global_env = Environment()
    for member in DEFAULT_MATCH_KINDS:
        global_env.bind(member, evaluator.store.fresh(MatchKindValue(member)))
    for decl in program.declarations:
        evaluator.exec_declaration(decl, global_env)

    if control_name is None:
        control = program.main_control()
    else:
        found = program.control_named(control_name)
        if found is None:
            raise EvaluationError(f"program has no control named {control_name!r}")
        control = found

    control_env = global_env.child()
    inputs = inputs or {}
    for param in control.params:
        if param.name in inputs:
            value = inputs[param.name]
        else:
            value = evaluator.default_value(param.ty.ty)
        control_env.bind(param.name, evaluator.store.fresh(value))

    local_env = control_env.child()
    for decl in control.local_declarations:
        evaluator.exec_declaration(decl, local_env)
    signal = evaluator.exec_statement(control.apply_block, local_env)

    final: Dict[str, Value] = {}
    for param in control.params:
        final[param.name] = evaluator.store.read(control_env.require(param.name))
    return ControlRun(final, signal, store_size=len(evaluator.store))
