"""Runtime errors raised by the interpreter."""

from __future__ import annotations

from repro.syntax.source import SourceSpan


class EvaluationError(Exception):
    """A dynamic error: unknown variable, bad field, non-callable value, ...

    Well-typed programs never raise this (that is what the type system is
    for); the interpreter raises it eagerly so that bugs in hand-written
    test programs surface instead of silently producing garbage.
    """

    def __init__(self, message: str, span: SourceSpan | None = None) -> None:
        self.span = span or SourceSpan.unknown()
        super().__init__(f"{self.span}: {message}")
        self.message = message
