"""Control-flow signals ``sig``: continue, exit, or return a value."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.semantics.values import UnitValue, Value


class SignalKind(enum.Enum):
    CONT = "cont"
    EXIT = "exit"
    RETURN = "return"


@dataclass(frozen=True)
class Signal:
    """The result of evaluating a statement or declaration."""

    kind: SignalKind
    value: Optional[Value] = None

    @classmethod
    def cont(cls) -> "Signal":
        return cls(SignalKind.CONT)

    @classmethod
    def exit(cls) -> "Signal":
        return cls(SignalKind.EXIT)

    @classmethod
    def ret(cls, value: Optional[Value] = None) -> "Signal":
        return cls(SignalKind.RETURN, value if value is not None else UnitValue())

    @property
    def is_cont(self) -> bool:
        return self.kind is SignalKind.CONT

    @property
    def is_exit(self) -> bool:
        return self.kind is SignalKind.EXIT

    @property
    def is_return(self) -> bool:
        return self.kind is SignalKind.RETURN
