"""Runtime values for the Core P4 interpreter.

Values are immutable; writing through an l-value builds a new composite
value and stores it back at the base variable's location, exactly as in the
l-value writing rules of Appendix G.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, TYPE_CHECKING

from repro.syntax.types import (
    AnnotatedType,
    BitType,
    BoolType,
    HeaderType,
    IntType,
    MatchKindType,
    RecordType,
    StackType,
    Type,
    TypeName,
    UnitType,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.semantics.store import Environment
    from repro.syntax.declarations import FunctionDecl, TableDecl


@dataclass(frozen=True)
class Value:
    """Base class of every runtime value."""

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class UnitValue(Value):
    def describe(self) -> str:
        return "()"


@dataclass(frozen=True)
class BoolValue(Value):
    value: bool

    def describe(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class IntValue(Value):
    """An integer; ``width`` is None for arbitrary precision ``int``.

    Fixed-width values are always kept in the range ``[0, 2^width)``.
    """

    value: int
    width: Optional[int] = None

    def __post_init__(self) -> None:
        if self.width is not None:
            object.__setattr__(self, "value", self.value % (1 << self.width))

    def describe(self) -> str:
        if self.width is None:
            return str(self.value)
        return f"{self.width}w{self.value}"


@dataclass(frozen=True)
class MatchKindValue(Value):
    name: str

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class RecordValue(Value):
    fields: Tuple[Tuple[str, Value], ...]

    def field_map(self) -> Dict[str, Value]:
        return dict(self.fields)

    def get(self, name: str) -> Optional[Value]:
        for field_name, value in self.fields:
            if field_name == name:
                return value
        return None

    def set(self, name: str, value: Value) -> "RecordValue":
        return RecordValue(
            tuple((n, value if n == name else v) for n, v in self.fields)
        )

    def describe(self) -> str:
        inner = ", ".join(f"{n} = {v.describe()}" for n, v in self.fields)
        return "{" + inner + "}"


@dataclass(frozen=True)
class HeaderValue(Value):
    fields: Tuple[Tuple[str, Value], ...]
    valid: bool = True

    def field_map(self) -> Dict[str, Value]:
        return dict(self.fields)

    def get(self, name: str) -> Optional[Value]:
        for field_name, value in self.fields:
            if field_name == name:
                return value
        return None

    def set(self, name: str, value: Value) -> "HeaderValue":
        return HeaderValue(
            tuple((n, value if n == name else v) for n, v in self.fields), self.valid
        )

    def describe(self) -> str:
        inner = ", ".join(f"{n} = {v.describe()}" for n, v in self.fields)
        return f"header(valid={self.valid}){{" + inner + "}"


@dataclass(frozen=True)
class StackValue(Value):
    elements: Tuple[Value, ...]

    def get(self, index: int) -> Optional[Value]:
        if 0 <= index < len(self.elements):
            return self.elements[index]
        return None

    def set(self, index: int, value: Value) -> "StackValue":
        elements = list(self.elements)
        elements[index] = value
        return StackValue(tuple(elements))

    def describe(self) -> str:
        return "[" + ", ".join(v.describe() for v in self.elements) + "]"


@dataclass(frozen=True)
class ClosureValue(Value):
    """A function/action closure: captured environment plus the declaration."""

    environment: "Environment"
    declaration: "FunctionDecl"

    def describe(self) -> str:
        return f"clos({self.declaration.name})"


@dataclass(frozen=True)
class TableValue(Value):
    """A table value: captured environment plus the declaration.

    The control plane identifies the table by its declaration name, which
    plays the role of the location ``l`` in ``table_l(ε, ...)``.
    """

    environment: "Environment"
    declaration: "TableDecl"

    def describe(self) -> str:
        return f"table({self.declaration.name})"


# ---------------------------------------------------------------------------
# default and havoc values


def init_value(ty: Type, lookup_type) -> Value:
    """The default-initialised value ``init_Δ τ`` for a declared type.

    ``lookup_type`` resolves type names (it is the interpreter's Δ).
    """
    if isinstance(ty, BoolType):
        return BoolValue(False)
    if isinstance(ty, IntType):
        return IntValue(0, None)
    if isinstance(ty, BitType):
        return IntValue(0, ty.width)
    if isinstance(ty, UnitType):
        return UnitValue()
    if isinstance(ty, MatchKindType):
        return MatchKindValue(ty.members[0] if ty.members else "exact")
    if isinstance(ty, RecordType):
        return RecordValue(
            tuple((f.name, init_value(f.ty.ty, lookup_type)) for f in ty.fields)
        )
    if isinstance(ty, HeaderType):
        return HeaderValue(
            tuple((f.name, init_value(f.ty.ty, lookup_type)) for f in ty.fields),
            valid=True,
        )
    if isinstance(ty, StackType):
        element = init_value(ty.element.ty, lookup_type)
        return StackValue(tuple(element for _ in range(ty.size)))
    if isinstance(ty, TypeName):
        resolved = lookup_type(ty.name)
        if resolved is None:
            raise ValueError(f"cannot initialise unknown type {ty.name!r}")
        return init_value(resolved, lookup_type)
    raise ValueError(f"cannot initialise values of type {ty.describe()}")


def havoc_value(ty: Type, lookup_type) -> Value:
    """The ``havoc(τ)`` value produced by out-of-bounds stack reads.

    We model havoc deterministically as the default value, which keeps the
    interpreter deterministic (important for the differential
    non-interference harness: both runs must havoc identically).
    """
    return init_value(ty, lookup_type)


def value_of_annotated(annotated: AnnotatedType, lookup_type) -> Value:
    """Default value for an annotated syntactic type."""
    return init_value(annotated.ty, lookup_type)
