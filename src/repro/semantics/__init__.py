"""Big-step operational semantics for the Core P4 fragment (Section 3.2).

The interpreter implements the evaluation judgements of petr4 that the
paper's non-interference theorem quantifies over:

* ``⟨C, Δ, μ, ε, exp⟩ ⇓ ⟨μ', val⟩`` -- expression evaluation,
* ``⟨C, Δ, μ, ε, stmt⟩ ⇓ ⟨μ', ε', sig⟩`` -- statement evaluation,
* ``⟨C, Δ, μ, ε, decl⟩ ⇓ ⟨Δ', μ', ε', sig⟩`` -- declaration evaluation,

including l-value evaluation and writing (Appendix F/G), copy-in/copy-out
argument passing (Appendix H), closures, table values, and the control
plane oracle ``C`` that resolves table matches to fully-applied actions.
"""

from repro.semantics.values import (
    BoolValue,
    ClosureValue,
    HeaderValue,
    IntValue,
    MatchKindValue,
    RecordValue,
    StackValue,
    TableValue,
    UnitValue,
    Value,
    init_value,
    havoc_value,
)
from repro.semantics.store import Environment, Location, Store
from repro.semantics.control_plane import (
    ControlPlane,
    ExactMatch,
    LpmMatch,
    MatchPattern,
    TableEntry,
    TernaryMatch,
    Wildcard,
)
from repro.semantics.signals import Signal, SignalKind
from repro.semantics.errors import EvaluationError
from repro.semantics.evaluator import Evaluator, ControlRun, run_control

__all__ = [
    "BoolValue",
    "ClosureValue",
    "HeaderValue",
    "IntValue",
    "MatchKindValue",
    "RecordValue",
    "StackValue",
    "TableValue",
    "UnitValue",
    "Value",
    "init_value",
    "havoc_value",
    "Environment",
    "Location",
    "Store",
    "ControlPlane",
    "ExactMatch",
    "LpmMatch",
    "MatchPattern",
    "TableEntry",
    "TernaryMatch",
    "Wildcard",
    "Signal",
    "SignalKind",
    "EvaluationError",
    "Evaluator",
    "ControlRun",
    "run_control",
]
