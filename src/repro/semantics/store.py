"""Memory stores μ and environments ε.

The store maps fresh locations to values; environments map variable names
to locations and are chained so statement blocks and closure bodies extend
the enclosing scope without mutating it (mirroring how the evaluation
judgements thread ``ε ⊆ ε'``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.semantics.errors import EvaluationError
from repro.semantics.values import Value

#: Store locations are opaque integers.
Location = int


@dataclass
class Store:
    """The memory store μ : Location -> Value."""

    _cells: Dict[Location, Value] = field(default_factory=dict)
    _counter: Iterator[int] = field(default_factory=itertools.count)

    def fresh(self, value: Value) -> Location:
        """Allocate a fresh location holding ``value``."""
        location = next(self._counter)
        self._cells[location] = value
        return location

    def read(self, location: Location) -> Value:
        if location not in self._cells:
            raise EvaluationError(f"read from unallocated location {location}")
        return self._cells[location]

    def write(self, location: Location, value: Value) -> None:
        if location not in self._cells:
            raise EvaluationError(f"write to unallocated location {location}")
        self._cells[location] = value

    def __contains__(self, location: Location) -> bool:
        return location in self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def snapshot(self) -> Dict[Location, Value]:
        """A shallow copy of the cells (values are immutable)."""
        return dict(self._cells)


@dataclass
class Environment:
    """The environment ε : Var -> Location, with lexical scoping."""

    _bindings: Dict[str, Location] = field(default_factory=dict)
    _parent: Optional["Environment"] = None

    def bind(self, name: str, location: Location) -> None:
        self._bindings[name] = location

    def lookup(self, name: str) -> Optional[Location]:
        if name in self._bindings:
            return self._bindings[name]
        if self._parent is not None:
            return self._parent.lookup(name)
        return None

    def require(self, name: str) -> Location:
        location = self.lookup(name)
        if location is None:
            raise EvaluationError(f"unknown variable {name!r}")
        return location

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    def child(self) -> "Environment":
        return Environment(_parent=self)

    def names(self) -> Iterator[str]:
        seen = set()
        scope: Optional[Environment] = self
        while scope is not None:
            for name in scope._bindings:
                if name not in seen:
                    seen.add(name)
                    yield name
            scope = scope._parent
