"""The control-plane oracle ``C``.

``C`` maps a table (identified by name), the evaluated key values, and the
table's partially-applied actions to a fully-applied action: which action
to run and the values of its control-plane-supplied (directionless)
parameters.  In a real switch the controller installs these entries at run
time; here they are provided by tests, examples, and the non-interference
harness.

Match kinds implemented: ``exact``, ``lpm`` (longest prefix), ``ternary``
(value/mask), and a wildcard that matches anything.  When several entries
match, ``exact``/``ternary`` pick the first in priority order while ``lpm``
entries compete on prefix length, which is how BMv2 resolves matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.semantics.errors import EvaluationError
from repro.semantics.values import BoolValue, IntValue, Value


def _as_int(value: Value) -> int:
    if isinstance(value, IntValue):
        return value.value
    if isinstance(value, BoolValue):
        return int(value.value)
    raise EvaluationError(f"table keys must be scalars, got {value.describe()}")


@dataclass(frozen=True)
class MatchPattern:
    """Base class for one key's match pattern inside a table entry."""

    def matches(self, value: Value) -> bool:
        raise NotImplementedError

    def specificity(self) -> int:
        """Higher is more specific; used to break ties between lpm entries."""
        return 0


@dataclass(frozen=True)
class ExactMatch(MatchPattern):
    value: int

    def matches(self, value: Value) -> bool:
        return _as_int(value) == self.value

    def specificity(self) -> int:
        return 1 << 16


@dataclass(frozen=True)
class LpmMatch(MatchPattern):
    value: int
    prefix_len: int
    width: int = 32

    def matches(self, value: Value) -> bool:
        if self.prefix_len == 0:
            return True
        shift = self.width - self.prefix_len
        return (_as_int(value) >> shift) == (self.value >> shift)

    def specificity(self) -> int:
        return self.prefix_len


@dataclass(frozen=True)
class TernaryMatch(MatchPattern):
    value: int
    mask: int

    def matches(self, value: Value) -> bool:
        return (_as_int(value) & self.mask) == (self.value & self.mask)

    def specificity(self) -> int:
        return bin(self.mask).count("1")


@dataclass(frozen=True)
class Wildcard(MatchPattern):
    def matches(self, value: Value) -> bool:
        return True

    def specificity(self) -> int:
        return 0


@dataclass(frozen=True)
class TableEntry:
    """One installed entry: patterns for each key, the action, and its
    control-plane arguments (by parameter name)."""

    patterns: Tuple[MatchPattern, ...]
    action: str
    action_args: Tuple[Tuple[str, Value], ...] = ()
    priority: int = 0

    def matches(self, key_values: Sequence[Value]) -> bool:
        if len(self.patterns) != len(key_values):
            return False
        return all(p.matches(v) for p, v in zip(self.patterns, key_values))

    def specificity(self) -> int:
        return sum(p.specificity() for p in self.patterns) + self.priority

    def args_map(self) -> Dict[str, Value]:
        return dict(self.action_args)


@dataclass(frozen=True)
class ResolvedAction:
    """The fully-applied action reference returned by the oracle."""

    action: str
    control_args: Dict[str, Value] = field(default_factory=dict)


@dataclass
class ControlPlane:
    """The oracle ``C``: installed entries and default actions per table."""

    _entries: Dict[str, List[TableEntry]] = field(default_factory=dict)
    _defaults: Dict[str, ResolvedAction] = field(default_factory=dict)

    # -- installation --------------------------------------------------------

    def add_entry(self, table: str, entry: TableEntry) -> "ControlPlane":
        self._entries.setdefault(table, []).append(entry)
        return self

    def add_exact_entry(
        self,
        table: str,
        key_values: Sequence[int],
        action: str,
        action_args: Optional[Dict[str, Value]] = None,
        priority: int = 0,
    ) -> "ControlPlane":
        """Convenience wrapper for the common all-exact-keys case."""
        entry = TableEntry(
            tuple(ExactMatch(v) for v in key_values),
            action,
            tuple((action_args or {}).items()),
            priority,
        )
        return self.add_entry(table, entry)

    def set_default_action(
        self, table: str, action: str, action_args: Optional[Dict[str, Value]] = None
    ) -> "ControlPlane":
        self._defaults[table] = ResolvedAction(action, dict(action_args or {}))
        return self

    def entries_for(self, table: str) -> List[TableEntry]:
        return list(self._entries.get(table, []))

    # -- the oracle itself ------------------------------------------------------

    def resolve(
        self, table: str, key_values: Sequence[Value], declared_actions: Sequence[str]
    ) -> Optional[ResolvedAction]:
        """``C(l, key=val, partial actions) = ActionRef``.

        Returns the matched action with its control-plane arguments, the
        table's default action when nothing matches, or None when the table
        has neither (a miss with no default: the apply is a no-op).
        """
        best: Optional[TableEntry] = None
        for entry in self._entries.get(table, []):
            if entry.action not in declared_actions:
                raise EvaluationError(
                    f"control plane installed entry for unknown action "
                    f"{entry.action!r} in table {table!r}"
                )
            if entry.matches(key_values):
                if best is None or entry.specificity() > best.specificity():
                    best = entry
        if best is not None:
            return ResolvedAction(best.action, best.args_map())
        default = self._defaults.get(table)
        if default is not None and default.action not in declared_actions:
            raise EvaluationError(
                f"default action {default.action!r} is not declared by table {table!r}"
            )
        return default
