"""L-value evaluation, reading, and writing (Appendix F and G).

An l-value is a path rooted at a variable: ``x``, ``lval.f`` or
``lval[n]``.  Writing through an l-value reads the base variable, rebuilds
the composite value along the path, and stores the result back at the base
variable's location (``lval_base``), matching the paper's write rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.semantics.errors import EvaluationError
from repro.semantics.store import Environment, Store
from repro.semantics.values import (
    BoolValue,
    HeaderValue,
    IntValue,
    RecordValue,
    StackValue,
    Value,
)


@dataclass(frozen=True)
class LVar:
    """The base case: a variable."""

    name: str

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class LField:
    """A field projection ``lval.f``."""

    base: "LValue"
    field_name: str

    def describe(self) -> str:
        return f"{self.base.describe()}.{self.field_name}"


@dataclass(frozen=True)
class LIndex:
    """A stack index ``lval[n]`` (the index is already evaluated)."""

    base: "LValue"
    index: int

    def describe(self) -> str:
        return f"{self.base.describe()}[{self.index}]"


LValue = Union[LVar, LField, LIndex]


def lval_base(lvalue: LValue) -> str:
    """The base variable touched when writing to ``lvalue``."""
    while not isinstance(lvalue, LVar):
        lvalue = lvalue.base
    return lvalue.name


def zero_like(value: Value) -> Value:
    """A zeroed value with the same shape as ``value`` (used for havoc)."""
    if isinstance(value, BoolValue):
        return BoolValue(False)
    if isinstance(value, IntValue):
        return IntValue(0, value.width)
    if isinstance(value, RecordValue):
        return RecordValue(tuple((n, zero_like(v)) for n, v in value.fields))
    if isinstance(value, HeaderValue):
        return HeaderValue(
            tuple((n, zero_like(v)) for n, v in value.fields), value.valid
        )
    if isinstance(value, StackValue):
        return StackValue(tuple(zero_like(v) for v in value.elements))
    return value


def read_lvalue(lvalue: LValue, env: Environment, store: Store) -> Value:
    """Evaluate an already-normalised l-value to the value it denotes."""
    if isinstance(lvalue, LVar):
        return store.read(env.require(lvalue.name))
    base = read_lvalue(lvalue.base, env, store)
    if isinstance(lvalue, LField):
        if not isinstance(base, (RecordValue, HeaderValue)):
            raise EvaluationError(
                f"cannot read field {lvalue.field_name!r} of {base.describe()}"
            )
        value = base.get(lvalue.field_name)
        if value is None:
            raise EvaluationError(
                f"value {base.describe()} has no field {lvalue.field_name!r}"
            )
        return value
    if isinstance(lvalue, LIndex):
        if not isinstance(base, StackValue):
            raise EvaluationError(f"cannot index into {base.describe()}")
        element = base.get(lvalue.index)
        if element is None:
            # Out-of-bounds read: havoc, modelled deterministically as a
            # zeroed element (see values.havoc_value).
            return zero_like(base.elements[0]) if base.elements else base
        return element
    raise EvaluationError(f"malformed l-value {lvalue!r}")


def _updated(base: Value, lvalue: LValue, new_value: Value) -> Value:
    """Rebuild ``base`` (the value of some prefix path) with the update applied."""
    if isinstance(lvalue, LVar):
        return new_value
    parent = lvalue.base
    if isinstance(lvalue, LField):
        def rebuild(parent_value: Value) -> Value:
            if not isinstance(parent_value, (RecordValue, HeaderValue)):
                raise EvaluationError(
                    f"cannot write field {lvalue.field_name!r} of "
                    f"{parent_value.describe()}"
                )
            if parent_value.get(lvalue.field_name) is None:
                raise EvaluationError(
                    f"value {parent_value.describe()} has no field "
                    f"{lvalue.field_name!r}"
                )
            return parent_value.set(lvalue.field_name, new_value)

        return _rebuild_along(base, parent, rebuild)
    if isinstance(lvalue, LIndex):
        def rebuild(parent_value: Value) -> Value:
            if not isinstance(parent_value, StackValue):
                raise EvaluationError(f"cannot index into {parent_value.describe()}")
            if not (0 <= lvalue.index < len(parent_value.elements)):
                # Out-of-bounds write: no-op, mirroring the havoc read.
                return parent_value
            return parent_value.set(lvalue.index, new_value)

        return _rebuild_along(base, parent, rebuild)
    raise EvaluationError(f"malformed l-value {lvalue!r}")


def _rebuild_along(base: Value, path: LValue, rebuild) -> Value:
    """Apply ``rebuild`` to the value denoted by ``path`` inside ``base``."""
    if isinstance(path, LVar):
        return rebuild(base)
    if isinstance(path, LField):
        def inner(parent_value: Value) -> Value:
            if not isinstance(parent_value, (RecordValue, HeaderValue)):
                raise EvaluationError(
                    f"cannot traverse field {path.field_name!r} of "
                    f"{parent_value.describe()}"
                )
            child = parent_value.get(path.field_name)
            if child is None:
                raise EvaluationError(
                    f"value {parent_value.describe()} has no field {path.field_name!r}"
                )
            return parent_value.set(path.field_name, rebuild(child))

        return _rebuild_along(base, path.base, inner)
    if isinstance(path, LIndex):
        def inner(parent_value: Value) -> Value:
            if not isinstance(parent_value, StackValue):
                raise EvaluationError(f"cannot index into {parent_value.describe()}")
            if not (0 <= path.index < len(parent_value.elements)):
                return parent_value
            child = parent_value.elements[path.index]
            return parent_value.set(path.index, rebuild(child))

        return _rebuild_along(base, path.base, inner)
    raise EvaluationError(f"malformed l-value path {path!r}")


def write_lvalue(lvalue: LValue, value: Value, env: Environment, store: Store) -> None:
    """Write ``value`` through ``lvalue`` (Appendix G's ⇓_write)."""
    base_name = lval_base(lvalue)
    location = env.require(base_name)
    base_value = store.read(location)
    store.write(location, _updated(base_value, lvalue, value))
