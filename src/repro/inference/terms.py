"""Label variables and label terms.

The inference subsystem replaces the concrete :data:`~repro.lattice.base.Label`
occupying each annotation slot with a *term* over the lattice:

* :class:`ConstTerm` -- a known label (an explicit annotation, or ``⊥`` for
  literals);
* :class:`VarTerm` -- an unknown introduced for a missing or ``infer``-marked
  annotation;
* :class:`JoinTerm` / :class:`MeetTerm` -- least upper / greatest lower
  bounds of sub-terms, mirroring where the checker calls ``lattice.join``
  (T-BinOp, branch program counters) and ``lattice.meet`` (write bounds
  ``pc_fn`` / ``pc_tbl``).

Terms are immutable and hashable, so they can sit in the ``label`` slot of
:class:`~repro.ifc.security_types.SecurityType` (whose labels are opaque
hashables) and the whole Figure 4 security-type machinery can be reused
during constraint generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.lattice.base import Label, Lattice
from repro.syntax.source import SourceSpan


@dataclass(frozen=True)
class LabelVar:
    """An unknown security label, tied to the annotation slot it stands for.

    ``uid`` makes the variable unique; ``hint`` is a human readable
    description of the slot (``"field bfs_t.num_hops"``) and ``span`` points
    at it in the source, so solved assignments and conflict diagnostics can
    be reported in terms the programmer wrote.
    """

    uid: int
    hint: str = ""
    span: SourceSpan = field(default_factory=SourceSpan.unknown)

    def __hash__(self) -> int:
        # The generated dataclass hash recurses into ``hint`` and ``span``,
        # which dominates dict construction when the packed solver decodes
        # 100k+ variables; ``uid`` alone is (at worst) an equally good hash
        # and is PYTHONHASHSEED-independent.  Equality stays field-based.
        return self.uid

    def describe(self) -> str:
        return self.hint or f"?{self.uid}"

    def __str__(self) -> str:
        return f"?{self.uid}" + (f" ({self.hint})" if self.hint else "")


class VarSupply:
    """Hands out fresh :class:`LabelVar`s with increasing ids."""

    def __init__(self) -> None:
        self._next = 0
        self._vars: List[LabelVar] = []

    def fresh(self, hint: str = "", span: SourceSpan | None = None) -> LabelVar:
        var = LabelVar(self._next, hint, span or SourceSpan.unknown())
        self._next += 1
        self._vars.append(var)
        return var

    @property
    def all_vars(self) -> Tuple[LabelVar, ...]:
        return tuple(self._vars)

    def __len__(self) -> int:
        return self._next


@dataclass(frozen=True)
class Term:
    """Base class for label terms."""

    def describe(self) -> str:  # pragma: no cover - overridden
        return type(self).__name__


@dataclass(frozen=True)
class ConstTerm(Term):
    """A concrete lattice label."""

    label: Label

    def describe(self) -> str:
        return str(self.label)


@dataclass(frozen=True)
class VarTerm(Term):
    """A reference to a label variable."""

    var: LabelVar

    def describe(self) -> str:
        return f"?{self.var.uid}"


@dataclass(frozen=True)
class JoinTerm(Term):
    """The least upper bound of ``parts`` (at least two of them)."""

    parts: Tuple[Term, ...]

    def describe(self) -> str:
        return "(" + " ⊔ ".join(p.describe() for p in self.parts) + ")"


@dataclass(frozen=True)
class MeetTerm(Term):
    """The greatest lower bound of ``parts`` (at least two of them)."""

    parts: Tuple[Term, ...]

    def describe(self) -> str:
        return "(" + " ⊓ ".join(p.describe() for p in self.parts) + ")"


def as_term(label: object) -> Term:
    """Coerce ``label`` into a term (concrete labels become constants)."""
    if isinstance(label, Term):
        return label
    return ConstTerm(label)


def _flatten(parts: Iterable[Term], kind: type) -> List[Term]:
    flat: List[Term] = []
    for part in parts:
        if isinstance(part, kind):
            flat.extend(part.parts)  # type: ignore[attr-defined]
        else:
            flat.append(part)
    return flat


def join_terms(lattice: Lattice, parts: Iterable[object]) -> Term:
    """A simplified join: flatten, fold constants, drop ⊥, deduplicate."""
    flat = _flatten((as_term(p) for p in parts), JoinTerm)
    const = lattice.bottom
    rest: List[Term] = []
    seen: set = set()
    for part in flat:
        if isinstance(part, ConstTerm):
            const = lattice.join(const, part.label)
        elif part not in seen:
            seen.add(part)
            rest.append(part)
    if lattice.equal(const, lattice.top) or not rest:
        return ConstTerm(const)
    if not lattice.equal(const, lattice.bottom):
        rest.append(ConstTerm(const))
    if len(rest) == 1:
        return rest[0]
    return JoinTerm(tuple(rest))


def meet_terms(lattice: Lattice, parts: Iterable[object]) -> Term:
    """A simplified meet: flatten, fold constants, drop ⊤, deduplicate."""
    flat = _flatten((as_term(p) for p in parts), MeetTerm)
    const = lattice.top
    rest: List[Term] = []
    seen: set = set()
    for part in flat:
        if isinstance(part, ConstTerm):
            const = lattice.meet(const, part.label)
        elif part not in seen:
            seen.add(part)
            rest.append(part)
    if lattice.equal(const, lattice.bottom) or not rest:
        return ConstTerm(const)
    if not lattice.equal(const, lattice.top):
        rest.append(ConstTerm(const))
    if len(rest) == 1:
        return rest[0]
    return MeetTerm(tuple(rest))


def free_vars(term: Term) -> FrozenSet[LabelVar]:
    """Every label variable occurring in ``term``."""
    if isinstance(term, VarTerm):
        return frozenset((term.var,))
    if isinstance(term, (JoinTerm, MeetTerm)):
        result: FrozenSet[LabelVar] = frozenset()
        for part in term.parts:
            result |= free_vars(part)
        return result
    return frozenset()


def evaluate(term: Term, lattice: Lattice, assignment: Dict[LabelVar, Label]) -> Label:
    """The label denoted by ``term`` under ``assignment``.

    Unassigned variables evaluate to ``⊥`` (the Kleene iteration's starting
    point), which keeps evaluation total and monotone in the assignment.
    """
    if isinstance(term, ConstTerm):
        return term.label
    if isinstance(term, VarTerm):
        return assignment.get(term.var, lattice.bottom)
    if isinstance(term, JoinTerm):
        return lattice.join_all(
            evaluate(part, lattice, assignment) for part in term.parts
        )
    if isinstance(term, MeetTerm):
        return lattice.meet_all(
            evaluate(part, lattice, assignment) for part in term.parts
        )
    raise TypeError(f"cannot evaluate {type(term).__name__}")
