"""Least-fixpoint constraint solving over a finite security lattice.

The solver normalises every constraint ``lhs ⊑ rhs``:

* a :class:`~repro.inference.terms.MeetTerm` on the right decomposes
  exactly (``a ⊑ b ⊓ c`` iff ``a ⊑ b`` and ``a ⊑ c``), which is how the
  inferred write bounds ``pc_fn`` / ``pc_tbl`` are handled;
* a variable on the right becomes a *propagation edge*: the variable must
  sit above the (monotone) value of the left term;
* a join on the right that contains a variable (``lhs ⊑ v ⊔ c``) has no
  canonical least solution; it is over-approximated soundly by propagating
  the whole left side into the variable;
* anything else -- a constant or a term with no variables to raise -- is a
  *check*, verified after the fixpoint.

Kleene iteration from ``⊥`` then pushes joins along the propagation edges
until nothing changes.  Because every left-hand term evaluates monotonically
in the assignment and the lattice is finite, the iteration terminates, and
the result is the *least* assignment satisfying all propagation
constraints -- the classic argument for inequality constraints over a
join-semilattice (cf. the template-domain lifting of Mukherjee et al.).
The checks are exactly the upper bounds; the constraint system is
satisfiable iff the least solution passes them, so every failed check is a
genuine conflict.  For each conflict an *unsatisfiable core* is extracted
by slicing backwards through the propagation edges that raised the
offending variables, giving the chain of source spans from the annotated
secret to the too-low sink.

Scheduling lives in :mod:`repro.inference.graph`: :func:`solve` builds a
:class:`~repro.inference.graph.PropagationGraph` (edges deduplicated,
condensed into SCCs via Tarjan) and runs the Kleene iteration in
topological component order, so acyclic regions are solved in one pass and
iteration is confined to genuine cycles.  :func:`solve_worklist` keeps the
original single global worklist as the reference implementation -- the
property tests assert both produce identical least solutions and conflict
sets, and the scaling benchmark compares their iteration counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.ifc.errors import IfcDiagnostic
from repro.inference.constraints import Constraint
from repro.inference.terms import (
    ConstTerm,
    JoinTerm,
    LabelVar,
    MeetTerm,
    Term,
    VarTerm,
    evaluate,
)
from repro.lattice.base import Label, Lattice

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.inference.graph import SolverStats


class InferenceError(Exception):
    """The constraint system is malformed (not a user-facing conflict)."""


@dataclass(frozen=True)
class InferenceConflict:
    """A check constraint the least solution violates."""

    constraint: Constraint
    observed: Label
    required: Label
    #: Propagation constraints that forced ``observed`` above ``required``,
    #: ordered from the conflicting check back towards the original sources.
    core: Tuple[Constraint, ...] = ()

    def as_diagnostic(self, lattice: Lattice) -> IfcDiagnostic:
        message = (
            f"{self.constraint.reason or 'label constraint violated'}: inferred "
            f"label {lattice.format_label(self.observed)} may not flow below "
            f"{lattice.format_label(self.required)}"
        )
        origins = [
            str(c.span) for c in self.core if not c.span.is_unknown()
        ]
        if origins:
            unique = list(dict.fromkeys(origins))
            message += " (labels forced up at: " + ", ".join(unique) + ")"
        return IfcDiagnostic(
            self.constraint.kind, message, self.constraint.span, self.constraint.rule
        )

    def __str__(self) -> str:
        return (
            f"{self.constraint.span}: {self.constraint.describe()} fails "
            f"({self.observed} ⋢ {self.required})"
        )


@dataclass
class Solution:
    """Outcome of solving a constraint system."""

    lattice: Lattice
    assignment: Dict[LabelVar, Label] = field(default_factory=dict)
    conflicts: List[InferenceConflict] = field(default_factory=list)
    #: Number of worklist pops the Kleene iteration performed.
    iterations: int = 0
    propagation_count: int = 0
    check_count: int = 0
    #: Scheduler statistics (SCC counts, edges visited, passes, solve time);
    #: populated by the graph-based solver, ``None`` for the reference
    #: worklist solver's bare counters.
    stats: Optional["SolverStats"] = None
    #: The propagation graph the solution was computed over (set by the
    #: graph-based solvers).  Downstream analyses -- leak-path witnesses,
    #: lint graph queries (:mod:`repro.analysis`) -- walk it instead of
    #: re-normalising the constraints.
    graph: Optional[object] = None

    @property
    def ok(self) -> bool:
        return not self.conflicts

    def value_of(self, var: LabelVar) -> Label:
        return self.assignment.get(var, self.lattice.bottom)


#: One propagation edge: left term, target variable, originating constraint,
#: and -- for join-on-rhs constraints -- the constant part of the join, which
#: *covers* the flow (nothing propagates) whenever the left side fits under it.
Propagation = Tuple[Term, LabelVar, Constraint, Optional[Label]]


def _normalise(
    lattice: Lattice,
    constraint: Constraint,
    lhs: Term,
    rhs: Term,
    propagations: List[Propagation],
    checks: List[Tuple[Term, Term, Constraint]],
) -> None:
    if isinstance(rhs, MeetTerm):
        for part in rhs.parts:
            _normalise(lattice, constraint, lhs, part, propagations, checks)
        return
    if isinstance(rhs, VarTerm):
        propagations.append((lhs, rhs.var, constraint, None))
        return
    if isinstance(rhs, JoinTerm):
        # ``lhs ⊑ v ⊔ c`` arises when a use site joins an explicit label onto
        # a slot variable (``<t, A> x`` over an unannotated ``typedef t``).
        # Decompose a join on the left first (exact).  For the rest, a least
        # solution is not in general well defined (any of the variables
        # could absorb the flow); we propagate into the first variable, but
        # only when the flow exceeds the join's constant part ``c`` -- a
        # conditional edge whose transfer function (⊥ if lhs ⊑ c, else lhs)
        # stays monotone, so the fixpoint exists and never raises a shared
        # variable for a flow the explicit label already covers.
        if isinstance(lhs, JoinTerm):
            for part in lhs.parts:
                _normalise(lattice, constraint, part, rhs, propagations, checks)
            return
        cover = lattice.join_all(
            part.label for part in rhs.parts if isinstance(part, ConstTerm)
        )
        if isinstance(lhs, ConstTerm) and lattice.leq(lhs.label, cover):
            return  # statically covered by the constant side
        for part in rhs.parts:
            if isinstance(part, VarTerm):
                propagations.append((lhs, part.var, constraint, cover))
                return
        checks.append((lhs, rhs, constraint))
        return
    # Constant right-hand sides are upper bounds: checked after the fixpoint.
    checks.append((lhs, rhs, constraint))


#: Names :func:`solve` accepts for its ``backend`` parameter.
SOLVER_BACKENDS = ("graph", "packed", "worklist")


def solve(
    lattice: Lattice,
    constraints: List[Constraint],
    *,
    presolve: bool = False,
    backend: str = "graph",
    workers: int = 1,
) -> Solution:
    """Solve ``constraints`` over ``lattice``; least solution plus conflicts.

    Builds the propagation graph, condenses it into SCCs and schedules the
    Kleene iteration in topological component order (see
    :mod:`repro.inference.graph`).  ``presolve=True`` additionally runs the
    constant-label reduction of :mod:`repro.analysis.presolve` first, so
    trivially fixed variables and their edges never enter the Kleene
    iteration (the least solution and conflict set are unchanged).

    ``backend`` selects the solving engine over that same graph:

    * ``"graph"`` (default) -- the SCC-scheduled object-label solver;
    * ``"packed"`` -- the bit-packed array backend
      (:mod:`repro.inference.packed`): labels encoded as machine ints,
      batched Kleene sweeps, and -- with ``workers > 1`` -- independent
      component clusters dispatched across a process pool.  Falls back to
      ``"graph"`` automatically for lattices without a faithful int
      encoding (see :attr:`SolverStats.fallback_reason`).  Identical
      solutions, conflicts, cores and witnesses by construction;
    * ``"worklist"`` -- the original single-worklist reference solver
      (no ``presolve``/``workers`` support).

    For a persistent graph that supports incremental re-solving, use
    :class:`repro.inference.engine.Solver`.
    """
    if backend not in SOLVER_BACKENDS:
        raise ValueError(
            f"unknown solver backend {backend!r}; expected one of {SOLVER_BACKENDS}"
        )
    if backend == "worklist":
        if presolve:
            raise ValueError("the worklist reference backend does not support presolve")
        return solve_worklist(lattice, constraints)
    if backend == "packed":
        from repro.inference.packed import solve_packed

        return solve_packed(lattice, constraints, presolve=presolve, workers=workers)
    from repro.inference.graph import PropagationGraph

    return PropagationGraph(lattice, constraints).solve(presolve=presolve)


def solve_worklist(lattice: Lattice, constraints: List[Constraint]) -> Solution:
    """The original single-worklist Kleene solver, kept as the reference.

    Runs over the same deduplicated propagation edges as :func:`solve` but
    with one global LIFO worklist seeded with every edge, exactly as the
    seed solver scheduled it.  Property tests assert it agrees with the
    SCC-scheduled solver; the scaling benchmark counts how many more pops
    this schedule needs.
    """
    from repro.inference.graph import PropagationGraph

    graph = PropagationGraph(lattice, constraints)
    assignment = graph.fresh_assignment()
    solution = Solution(lattice, assignment)
    solution.propagation_count = len(graph.edges)
    solution.check_count = len(graph.checks)

    pending: List[int] = list(range(len(graph.edges)))
    queued: Set[int] = set(pending)
    # Worklist Kleene iteration from ⊥.  Monotone + finite lattice =>
    # termination; the bound below only guards against a broken lattice.
    budget = (len(graph.edges) + 1) * (len(assignment) + 1) * _height_bound(lattice)
    while pending:
        index = pending.pop()
        queued.discard(index)
        solution.iterations += 1
        if solution.iterations > budget:
            raise InferenceError(
                "constraint solving did not converge; the lattice violates the "
                "ascending chain condition"
            )
        edge = graph.edges[index]
        value = evaluate(edge.lhs, lattice, assignment)
        if edge.cover is not None and lattice.leq(value, edge.cover):
            continue  # the join's constant part absorbs the flow
        current = assignment[edge.target]
        if not lattice.leq(value, current):
            assignment[edge.target] = lattice.join(current, value)
            for dependent in graph.dependents.get(edge.target, ()):  # re-examine
                if dependent not in queued:
                    queued.add(dependent)
                    pending.append(dependent)

    solution.conflicts = [
        conflict
        for conflict in graph.check_conflicts(assignment)
        if conflict is not None
    ]
    return solution


def _height_bound(lattice: Lattice) -> int:
    """An upper bound on ascending-chain length, from lattice structure.

    Delegates to :meth:`repro.lattice.base.Lattice.height_bound`, which
    structured lattices (powersets, products, chains) answer without
    enumerating their carrier -- the seed implementation materialised
    ``list(lattice.labels())``, which is 2^n labels for a powerset over n
    principals.
    """
    try:
        return max(2, lattice.height_bound())
    except Exception:  # pragma: no cover - infinite/lazy lattices
        return 64
