"""Least-fixpoint constraint solving over a finite security lattice.

The solver normalises every constraint ``lhs ⊑ rhs``:

* a :class:`~repro.inference.terms.MeetTerm` on the right decomposes
  exactly (``a ⊑ b ⊓ c`` iff ``a ⊑ b`` and ``a ⊑ c``), which is how the
  inferred write bounds ``pc_fn`` / ``pc_tbl`` are handled;
* a variable on the right becomes a *propagation edge*: the variable must
  sit above the (monotone) value of the left term;
* a join on the right that contains a variable (``lhs ⊑ v ⊔ c``) has no
  canonical least solution; it is over-approximated soundly by propagating
  the whole left side into the variable;
* anything else -- a constant or a term with no variables to raise -- is a
  *check*, verified after the fixpoint.

Kleene iteration from ``⊥`` then pushes joins along the propagation edges
until nothing changes.  Because every left-hand term evaluates monotonically
in the assignment and the lattice is finite, the iteration terminates, and
the result is the *least* assignment satisfying all propagation
constraints -- the classic argument for inequality constraints over a
join-semilattice (cf. the template-domain lifting of Mukherjee et al.).
The checks are exactly the upper bounds; the constraint system is
satisfiable iff the least solution passes them, so every failed check is a
genuine conflict.  For each conflict an *unsatisfiable core* is extracted
by slicing backwards through the propagation edges that raised the
offending variables, giving the chain of source spans from the annotated
secret to the too-low sink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ifc.errors import IfcDiagnostic
from repro.inference.constraints import Constraint
from repro.inference.terms import (
    ConstTerm,
    JoinTerm,
    LabelVar,
    MeetTerm,
    Term,
    VarTerm,
    evaluate,
    free_vars,
)
from repro.lattice.base import Label, Lattice


class InferenceError(Exception):
    """The constraint system is malformed (not a user-facing conflict)."""


@dataclass(frozen=True)
class InferenceConflict:
    """A check constraint the least solution violates."""

    constraint: Constraint
    observed: Label
    required: Label
    #: Propagation constraints that forced ``observed`` above ``required``,
    #: ordered from the conflicting check back towards the original sources.
    core: Tuple[Constraint, ...] = ()

    def as_diagnostic(self, lattice: Lattice) -> IfcDiagnostic:
        message = (
            f"{self.constraint.reason or 'label constraint violated'}: inferred "
            f"label {lattice.format_label(self.observed)} may not flow below "
            f"{lattice.format_label(self.required)}"
        )
        origins = [
            str(c.span) for c in self.core if not c.span.is_unknown()
        ]
        if origins:
            unique = list(dict.fromkeys(origins))
            message += " (labels forced up at: " + ", ".join(unique) + ")"
        return IfcDiagnostic(
            self.constraint.kind, message, self.constraint.span, self.constraint.rule
        )

    def __str__(self) -> str:
        return (
            f"{self.constraint.span}: {self.constraint.describe()} fails "
            f"({self.observed} ⋢ {self.required})"
        )


@dataclass
class Solution:
    """Outcome of solving a constraint system."""

    lattice: Lattice
    assignment: Dict[LabelVar, Label] = field(default_factory=dict)
    conflicts: List[InferenceConflict] = field(default_factory=list)
    #: Number of worklist pops the Kleene iteration performed.
    iterations: int = 0
    propagation_count: int = 0
    check_count: int = 0

    @property
    def ok(self) -> bool:
        return not self.conflicts

    def value_of(self, var: LabelVar) -> Label:
        return self.assignment.get(var, self.lattice.bottom)


#: One propagation edge: left term, target variable, originating constraint,
#: and -- for join-on-rhs constraints -- the constant part of the join, which
#: *covers* the flow (nothing propagates) whenever the left side fits under it.
Propagation = Tuple[Term, LabelVar, Constraint, Optional[Label]]


def _normalise(
    lattice: Lattice,
    constraint: Constraint,
    lhs: Term,
    rhs: Term,
    propagations: List[Propagation],
    checks: List[Tuple[Term, Term, Constraint]],
) -> None:
    if isinstance(rhs, MeetTerm):
        for part in rhs.parts:
            _normalise(lattice, constraint, lhs, part, propagations, checks)
        return
    if isinstance(rhs, VarTerm):
        propagations.append((lhs, rhs.var, constraint, None))
        return
    if isinstance(rhs, JoinTerm):
        # ``lhs ⊑ v ⊔ c`` arises when a use site joins an explicit label onto
        # a slot variable (``<t, A> x`` over an unannotated ``typedef t``).
        # Decompose a join on the left first (exact).  For the rest, a least
        # solution is not in general well defined (any of the variables
        # could absorb the flow); we propagate into the first variable, but
        # only when the flow exceeds the join's constant part ``c`` -- a
        # conditional edge whose transfer function (⊥ if lhs ⊑ c, else lhs)
        # stays monotone, so the fixpoint exists and never raises a shared
        # variable for a flow the explicit label already covers.
        if isinstance(lhs, JoinTerm):
            for part in lhs.parts:
                _normalise(lattice, constraint, part, rhs, propagations, checks)
            return
        cover = lattice.join_all(
            part.label for part in rhs.parts if isinstance(part, ConstTerm)
        )
        if isinstance(lhs, ConstTerm) and lattice.leq(lhs.label, cover):
            return  # statically covered by the constant side
        for part in rhs.parts:
            if isinstance(part, VarTerm):
                propagations.append((lhs, part.var, constraint, cover))
                return
        checks.append((lhs, rhs, constraint))
        return
    # Constant right-hand sides are upper bounds: checked after the fixpoint.
    checks.append((lhs, rhs, constraint))


def solve(lattice: Lattice, constraints: List[Constraint]) -> Solution:
    """Solve ``constraints`` over ``lattice``; least solution plus conflicts."""
    propagations: List[Propagation] = []
    checks: List[Tuple[Term, Term, Constraint]] = []
    for constraint in constraints:
        _normalise(
            lattice, constraint, constraint.lhs, constraint.rhs, propagations, checks
        )

    assignment: Dict[LabelVar, Label] = {}
    for constraint in constraints:
        for var in constraint.variables():
            assignment.setdefault(var, lattice.bottom)

    # Index: variable -> propagation edges whose left side mentions it.
    dependents: Dict[LabelVar, List[int]] = {}
    for index, (lhs, _target, _origin, _cover) in enumerate(propagations):
        for var in free_vars(lhs):
            dependents.setdefault(var, []).append(index)

    solution = Solution(lattice, assignment)
    solution.propagation_count = len(propagations)
    solution.check_count = len(checks)

    pending: List[int] = list(range(len(propagations)))
    queued: Set[int] = set(pending)
    # Worklist Kleene iteration from ⊥.  Monotone + finite lattice =>
    # termination; the bound below only guards against a broken lattice.
    budget = (len(propagations) + 1) * (len(assignment) + 1) * _height_bound(lattice)
    while pending:
        index = pending.pop()
        queued.discard(index)
        solution.iterations += 1
        if solution.iterations > budget:
            raise InferenceError(
                "constraint solving did not converge; the lattice violates the "
                "ascending chain condition"
            )
        lhs, target, _origin, cover = propagations[index]
        value = evaluate(lhs, lattice, assignment)
        if cover is not None and lattice.leq(value, cover):
            continue  # the join's constant part absorbs the flow
        current = assignment[target]
        if not lattice.leq(value, current):
            assignment[target] = lattice.join(current, value)
            for dependent in dependents.get(target, ()):  # re-examine users
                if dependent not in queued:
                    queued.add(dependent)
                    pending.append(dependent)

    edges_into: Dict[LabelVar, List[int]] = {}
    for index, (_lhs, target, _origin, _cover) in enumerate(propagations):
        edges_into.setdefault(target, []).append(index)
    for lhs, rhs, origin in checks:
        observed = evaluate(lhs, lattice, assignment)
        required = evaluate(rhs, lattice, assignment)
        if not lattice.leq(observed, required):
            core = _unsat_core(
                lattice, assignment, propagations, edges_into, lhs, required
            )
            solution.conflicts.append(
                InferenceConflict(origin, observed, required, tuple(core))
            )
    return solution


def _height_bound(lattice: Lattice) -> int:
    try:
        return max(2, len(list(lattice.labels())))
    except Exception:  # pragma: no cover - infinite/lazy lattices
        return 64


def _unsat_core(
    lattice: Lattice,
    assignment: Dict[LabelVar, Label],
    propagations: List[Propagation],
    edges_into: Dict[LabelVar, List[int]],
    lhs: Term,
    bound: Label,
) -> List[Constraint]:
    """Slice backwards from ``lhs`` through the edges that pushed it above
    ``bound``.

    A variable is *blamed* when its solved value does not fit under the
    violated upper bound; every propagation edge into a blamed variable
    whose source also exceeds the bound is part of the explanation.  The
    walk bottoms out at constraints whose left side is constant -- the
    explicit annotations the conflict is really between.
    """
    blamed: List[LabelVar] = [
        var for var in free_vars(lhs) if not lattice.leq(assignment[var], bound)
    ]
    visited: Set[LabelVar] = set(blamed)
    core: List[Constraint] = []
    seen_edges: Set[int] = set()
    while blamed:
        var = blamed.pop(0)
        for index in edges_into.get(var, ()):
            if index in seen_edges:
                continue
            edge_lhs, _target, origin, cover = propagations[index]
            edge_value = evaluate(edge_lhs, lattice, assignment)
            if cover is not None and lattice.leq(edge_value, cover):
                continue  # the edge propagated nothing (flow was covered)
            if lattice.leq(edge_value, bound):
                continue  # this edge alone kept the variable within bounds
            seen_edges.add(index)
            core.append(origin)
            for upstream in free_vars(edge_lhs):
                if upstream not in visited and not lattice.leq(
                    assignment[upstream], bound
                ):
                    visited.add(upstream)
                    blamed.append(upstream)
    return core
