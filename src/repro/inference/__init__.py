"""Constraint-based security-label inference for partially annotated programs.

P4BID's Figure 5–7 rules assume every variable, header field, and table
carries an explicit security label.  This subsystem removes that annotation
burden: it walks the same rules but *emits* every ``⊑`` side condition as a
constraint over label variables, solves the system to its least fixpoint
over any registered finite lattice, and writes the solution back into a
fully annotated program that the unmodified checker re-verifies.

* :mod:`repro.inference.terms` -- label variables and join/meet terms.
* :mod:`repro.inference.constraints` -- the ``⊑`` constraint IR with
  provenance (source spans, typing rule, violation kind).
* :mod:`repro.inference.generate` -- the constraint generator: a façade
  over the shared Figure 5–7 traversal (:mod:`repro.flow`) run with the
  symbolic label algebra, and the :class:`InferenceLabeler` that turns
  missing or ``infer``-marked annotations into variables.
* :mod:`repro.inference.solve` -- Kleene least-fixpoint solving plus
  unsatisfiable-core extraction for conflicts.
* :mod:`repro.inference.graph` -- the propagation-graph subsystem: edges
  deduplicated and condensed into SCCs (Tarjan), the Kleene iteration
  scheduled in topological component order, cone-of-influence queries.
* :mod:`repro.inference.packed` -- the bit-packed array backend
  (``solve(..., backend="packed")``): labels encoded as machine ints,
  batched Kleene sweeps over flattened edge blocks, and independent SCC
  clusters dispatched across a process pool -- with automatic fallback to
  the object backend for lattices without an int encoding.
* :mod:`repro.inference.elaborate` -- substitution of solved labels back
  into the AST.
* :mod:`repro.inference.engine` -- the generate → solve → elaborate
  pipeline behind :func:`infer_labels`, and the persistent :class:`Solver`
  whose :meth:`Solver.resolve` re-solves only the cone of influence of
  edited slots (for IDE-style interactive use).

Quickstart::

    from repro.frontend.parser import parse_program
    from repro.inference import infer_labels
    from repro.ifc.checker import check_ifc

    result = infer_labels(parse_program(source))
    if result.ok:
        assert check_ifc(result.elaborated, result.lattice).ok
"""

from repro.inference.constraints import Constraint, ConstraintSet
from repro.inference.elaborate import elaborate_program
from repro.inference.engine import InferenceResult, InferredLabel, Solver, infer_labels
from repro.inference.generate import (
    ConstraintGenerator,
    GenerationResult,
    InferenceLabeler,
    generate_constraints,
)
from repro.inference.graph import PropagationEdge, PropagationGraph, SolverStats
from repro.inference.packed import (
    CodecError,
    LabelCodec,
    PackedSystem,
    codec_for,
    solve_packed,
)
from repro.inference.solve import (
    SOLVER_BACKENDS,
    InferenceConflict,
    InferenceError,
    Solution,
    solve,
    solve_worklist,
)
from repro.inference.terms import (
    ConstTerm,
    JoinTerm,
    LabelVar,
    MeetTerm,
    Term,
    VarSupply,
    VarTerm,
    evaluate,
    free_vars,
    join_terms,
    meet_terms,
)

__all__ = [
    "CodecError",
    "Constraint",
    "ConstraintSet",
    "ConstraintGenerator",
    "ConstTerm",
    "GenerationResult",
    "InferenceConflict",
    "InferenceError",
    "InferenceLabeler",
    "InferenceResult",
    "InferredLabel",
    "JoinTerm",
    "LabelCodec",
    "LabelVar",
    "MeetTerm",
    "PackedSystem",
    "PropagationEdge",
    "PropagationGraph",
    "SOLVER_BACKENDS",
    "Solution",
    "Solver",
    "SolverStats",
    "Term",
    "VarSupply",
    "VarTerm",
    "codec_for",
    "elaborate_program",
    "evaluate",
    "free_vars",
    "generate_constraints",
    "infer_labels",
    "join_terms",
    "meet_terms",
    "solve",
    "solve_packed",
    "solve_worklist",
]
