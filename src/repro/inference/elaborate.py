"""Substitution: write a solved label assignment back into the AST.

``elaborate_program`` rebuilds a :class:`~repro.syntax.program.Program` in
which every annotation slot that received a label variable now carries the
concrete spelling of its solved label (via ``lattice.format_label``, whose
output round-trips through ``lattice.parse_label``).  Explicit annotations
are left untouched; bare ``infer`` markers whose slot needed no variable
(because the underlying declaration already fixes the label) are simply
dropped.  The result is a fully annotated program the stock
:func:`repro.ifc.checker.check_ifc` re-verifies independently -- the
soundness of inference rests on that unmodified checker, not on the solver.
"""

from __future__ import annotations

from typing import Optional

from repro.inference.generate import GenerationResult
from repro.inference.solve import Solution
from repro.syntax import declarations as d
from repro.syntax import statements as s
from repro.syntax.program import Program
from repro.syntax.types import (
    AnnotatedType,
    Field,
    HeaderType,
    RecordType,
    StackType,
    Type,
    is_inference_marker,
)


class _Elaborator:
    def __init__(self, generation: GenerationResult, solution: Solution) -> None:
        self._registry = generation.registry
        self._control_pc_vars = {
            id(control): var for control, var in generation.control_pc_vars
        }
        self._solution = solution
        self._lattice = generation.lattice

    # -- types ---------------------------------------------------------------

    def _label_text(self, node: AnnotatedType) -> Optional[str]:
        site = self._registry.site_of(node) if self._registry is not None else None
        if site is not None:
            label = self._solution.value_of(site.var)
            if site.augments and self._lattice.equal(label, self._lattice.bottom):
                # A ⊥ augmentation adds nothing to the underlying label;
                # leave the slot unannotated rather than writing a label
                # *below* the declaration's (which would read as lowering).
                return None
            return self._lattice.format_label(label)
        if node.wants_inference() and not self._parses(node.label):
            # The slot needed no variable of its own (the underlying
            # declaration carries the label); drop the marker.  A spelling
            # that names an actual lattice level stays.
            return None
        return node.label

    def _parses(self, label: Optional[str]) -> bool:
        try:
            self._lattice.parse_label(label)
            return True
        except Exception:
            return False

    def annotated(self, node: AnnotatedType) -> AnnotatedType:
        return AnnotatedType(self._type(node.ty), self._label_text(node), node.span)

    def _type(self, ty: Type) -> Type:
        if isinstance(ty, RecordType):
            return RecordType(self._fields(ty.fields))
        if isinstance(ty, HeaderType):
            return HeaderType(self._fields(ty.fields))
        if isinstance(ty, StackType):
            return StackType(self.annotated(ty.element), ty.size)
        return ty

    def _fields(self, fields):
        return tuple(Field(field.name, self.annotated(field.ty)) for field in fields)

    # -- declarations ---------------------------------------------------------

    def declaration(self, decl: d.Declaration) -> d.Declaration:
        if isinstance(decl, d.VarDecl):
            return d.VarDecl(self.annotated(decl.ty), decl.name, decl.init, span=decl.span)
        if isinstance(decl, d.TypedefDecl):
            return d.TypedefDecl(self.annotated(decl.ty), decl.name, span=decl.span)
        if isinstance(decl, d.HeaderDecl):
            return d.HeaderDecl(decl.name, self._fields(decl.fields), span=decl.span)
        if isinstance(decl, d.StructDecl):
            return d.StructDecl(decl.name, self._fields(decl.fields), span=decl.span)
        if isinstance(decl, d.FunctionDecl):
            return d.FunctionDecl(
                decl.name,
                tuple(self._param(p) for p in decl.params),
                self._block(decl.body),
                return_type=(
                    self.annotated(decl.return_type)
                    if decl.return_type is not None
                    else None
                ),
                is_action=decl.is_action,
                span=decl.span,
            )
        # Tables, match_kinds, ... carry no annotation slots.
        return decl

    def _param(self, param: d.Param) -> d.Param:
        return d.Param(param.direction, param.name, self.annotated(param.ty), span=param.span)

    # -- statements -----------------------------------------------------------

    def _block(self, block: s.Block) -> s.Block:
        return s.Block(
            tuple(self._statement(stmt) for stmt in block.statements), span=block.span
        )

    def _statement(self, stmt: s.Statement) -> s.Statement:
        if isinstance(stmt, s.Block):
            return self._block(stmt)
        if isinstance(stmt, s.VarDeclStmt):
            declaration = self.declaration(stmt.declaration)
            return s.VarDeclStmt(declaration, span=stmt.span)
        if isinstance(stmt, s.If):
            return s.If(
                stmt.condition,
                self._block(stmt.then_branch),
                self._block(stmt.else_branch),
                span=stmt.span,
            )
        return stmt

    # -- controls -------------------------------------------------------------

    def control(self, control: d.ControlDecl) -> d.ControlDecl:
        pc_label = control.pc_label
        var = self._control_pc_vars.get(id(control))
        if var is not None:
            pc_label = self._lattice.format_label(self._solution.value_of(var))
        elif is_inference_marker(pc_label):
            pc_label = None
        return d.ControlDecl(
            control.name,
            tuple(self._param(p) for p in control.params),
            tuple(self.declaration(decl) for decl in control.local_declarations),
            self._block(control.apply_block),
            pc_label=pc_label,
            span=control.span,
        )


def elaborate_program(generation: GenerationResult, solution: Solution) -> Program:
    """The program with every inferred label written into its slot."""
    elaborator = _Elaborator(generation, solution)
    program = generation.program
    return Program(
        tuple(elaborator.declaration(decl) for decl in program.declarations),
        tuple(elaborator.control(control) for control in program.controls),
        span=program.span,
        name=program.name,
    )
