"""Constraint generation: the Figure 5–7 rules, with unknowns.

:class:`ConstraintGenerator` visits the same rule sites as
:class:`repro.ifc.checker.IfcChecker` -- literally: both are façades over
the single shared traversal :class:`repro.flow.analysis.FlowAnalysis`.
Where the checker's algebra *tests* ``χ₁ ⊑ χ₂`` and reports a violation,
the generator's :class:`~repro.flow.symbolic.SymbolicAlgebra` *emits* the
comparison as a :class:`~repro.inference.constraints.Constraint` over
label terms.  Security types are reused unchanged -- their ``label``
slots simply hold :class:`~repro.inference.terms.Term`\\ s instead of
concrete labels -- so the structural machinery of Figure 4 (field maps,
body compatibility, stacks) needs no duplication.

Label variables enter through :class:`InferenceLabeler`, a
:class:`~repro.ifc.convert.TypeLabeler` whose :meth:`attach_label` hook
allocates a fresh variable for every scalar annotation slot that is missing
or explicitly marked ``infer``, instead of defaulting to ⊥ or raising
:class:`~repro.ifc.convert.LabelResolutionError`.  Slots are memoised by
AST node, so every use of a ``typedef``/``header`` field shares the single
variable of its declaration site -- inference assigns labels to
*declarations*, exactly where the annotation would be written.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Tuple

from repro.ifc.context import SecurityTypeDefs
from repro.ifc.convert import LabelResolutionError, TypeLabeler
from repro.ifc.errors import IfcDiagnostic
from repro.ifc.security_types import (
    SHeader,
    SRecord,
    SStack,
    SecurityBody,
    SecurityType,
)
from repro.inference.constraints import Constraint
from repro.inference.terms import (
    ConstTerm,
    LabelVar,
    Term,
    VarSupply,
    VarTerm,
    as_term,
    join_terms,
    meet_terms,
)
from repro.lattice.base import Lattice, LatticeError
from repro.syntax import declarations as d
from repro.syntax.program import Program
from repro.syntax.source import SourceSpan
from repro.syntax.types import AnnotatedType, is_inference_marker

# ---------------------------------------------------------------------------
# term-level analogues of the security-type helpers


def term_read_label(lattice: Lattice, sec_type: SecurityType) -> Term:
    """Term analogue of :func:`repro.ifc.security_types.read_label`."""
    body = sec_type.body
    if isinstance(body, (SRecord, SHeader)):
        return join_terms(
            lattice,
            [sec_type.label] + [term_read_label(lattice, f) for _, f in body.fields],
        )
    if isinstance(body, SStack):
        return join_terms(
            lattice, [sec_type.label, term_read_label(lattice, body.element)]
        )
    return as_term(sec_type.label)


def term_write_label(lattice: Lattice, sec_type: SecurityType) -> Term:
    """Term analogue of :func:`repro.ifc.checker.write_label`."""
    body = sec_type.body
    if isinstance(body, (SRecord, SHeader)):
        return meet_terms(
            lattice,
            [term_write_label(lattice, f) for _, f in body.fields] or [sec_type.label],
        )
    if isinstance(body, SStack):
        return term_write_label(lattice, body.element)
    return as_term(sec_type.label)


def term_join_into(lattice: Lattice, sec_type: SecurityType, term: Term) -> SecurityType:
    """Term analogue of :func:`repro.ifc.security_types.join_into`."""
    body = sec_type.body
    if isinstance(body, (SRecord, SHeader)):
        fields = tuple(
            (name, term_join_into(lattice, f, term)) for name, f in body.fields
        )
        new_body: SecurityBody = (
            SRecord(fields) if isinstance(body, SRecord) else SHeader(fields)
        )
        return SecurityType(new_body, sec_type.label)
    if isinstance(body, SStack):
        return SecurityType(
            SStack(term_join_into(lattice, body.element, term), body.size),
            sec_type.label,
        )
    return SecurityType(body, join_terms(lattice, [sec_type.label, term]))


# ---------------------------------------------------------------------------
# label-variable sites


@dataclass
class InferenceSite:
    """One annotation slot a label variable stands for.

    ``augments`` marks a use-site variable joined *onto* an underlying
    non-bottom label (``a_t x`` over an annotated ``typedef a_t``): the slot
    can raise the effective label but never lower it, and elaboration omits
    the annotation entirely when such a variable solves to ⊥.  ``floor`` is
    that underlying label, so reports can show the slot's *effective* label
    (``floor ⊔ solved``) rather than the bare variable's value.
    """

    var: LabelVar
    node: AnnotatedType
    hint: str
    augments: bool = False
    floor: Optional[object] = None

    @property
    def span(self) -> SourceSpan:
        return self.node.span


class SiteRegistry:
    """Maps annotation-slot AST nodes to their label variables.

    Keyed by node identity: the registry keeps every node alive, so ``id``
    reuse cannot alias two different slots, and repeated resolution of the
    same ``typedef``/``header`` field always yields the same variable.
    """

    def __init__(self, supply: VarSupply) -> None:
        self._supply = supply
        self._sites: Dict[int, InferenceSite] = {}
        #: Pending hints, keyed by node identity; the node itself is kept
        #: (not just its id) so the mapping survives serialization, where
        #: ids are reassigned on load.
        self._hints: Dict[int, Tuple[AnnotatedType, str]] = {}
        self._order: List[InferenceSite] = []
        #: When not None, every ``var_for`` resolution (fresh *or* memoised)
        #: is appended here -- a workspace records one log per re-walked
        #: declaration to learn which sites the declaration touches.
        self._touch_log: Optional[List[InferenceSite]] = None

    def suggest_hint(self, node: AnnotatedType, hint: str) -> None:
        self._hints.setdefault(id(node), (node, hint))

    def var_for(
        self,
        node: AnnotatedType,
        *,
        augments: bool = False,
        floor: object = None,
    ) -> LabelVar:
        site = self._sites.get(id(node))
        if site is None:
            hinted = self._hints.get(id(node))
            hint = hinted[1] if hinted is not None else f"annotation at {node.span}"
            site = InferenceSite(
                self._supply.fresh(hint, node.span), node, hint, augments, floor
            )
            self._sites[id(node)] = site
            self._order.append(site)
        if self._touch_log is not None:
            self._touch_log.append(site)
        return site.var

    def site_of(self, node: AnnotatedType) -> Optional[InferenceSite]:
        return self._sites.get(id(node))

    def sites(self) -> List[InferenceSite]:
        return list(self._order)

    # -- workspace support --------------------------------------------------

    def begin_touch_log(self) -> None:
        self._touch_log = []

    def end_touch_log(self) -> List[InferenceSite]:
        log, self._touch_log = self._touch_log or [], None
        return log

    def restrict_to(self, sites: List[InferenceSite]) -> None:
        """Replace the site order (dropping sites of deleted declarations)."""
        self._order = list(sites)
        self._sites = {id(site.node): site for site in self._order}
        self._hints = {
            id(node): (node, hint) for node, hint in self._hints.values()
        }

    def __getstate__(self) -> dict:
        return {
            "supply": self._supply,
            "order": self._order,
            "hints": list(self._hints.values()),
        }

    def __setstate__(self, state: dict) -> None:
        self._supply = state["supply"]
        self._order = list(state["order"])
        self._sites = {id(site.node): site for site in self._order}
        self._hints = {id(node): (node, hint) for node, hint in state["hints"]}
        self._touch_log = None


class InferenceLabeler(TypeLabeler):
    """A :class:`TypeLabeler` producing term labels and label variables."""

    def __init__(
        self,
        lattice: Lattice,
        definitions: SecurityTypeDefs,
        registry: SiteRegistry,
    ) -> None:
        super().__init__(lattice, definitions)
        self._registry = registry

    def resolve_label(self, text: Optional[str]):
        if text is None:
            return ConstTerm(self.lattice.bottom)
        try:
            return ConstTerm(self.lattice.parse_label(text))
        except LatticeError as exc:
            if is_inference_marker(text):
                return ConstTerm(self.lattice.bottom)
            raise LabelResolutionError(str(exc)) from exc

    def slot_is_open(self, label: Optional[str]) -> bool:
        """Whether an annotation slot asks to be inferred.

        A spelling that names an actual lattice level is never open (a
        lattice may define a level called ``Infer``); only a missing
        annotation or an unparseable ``infer`` / ``?`` marker is.
        """
        if label is None:
            return True
        if not is_inference_marker(label):
            return False
        try:
            self.lattice.parse_label(label)
            return False
        except LatticeError:
            return True

    def attach_label(self, annotated: AnnotatedType, base: SecurityType) -> SecurityType:
        composite = isinstance(base.body, (SRecord, SHeader, SStack))
        missing = self.slot_is_open(annotated.label)
        if composite:
            # Per-field slots carry the variables; the use-site slot only
            # matters when it names an explicit label to join in.
            if missing:
                return base
            return term_join_into(self._lattice, base, self.resolve_label(annotated.label))
        if not missing:
            return SecurityType(
                base.body,
                join_terms(
                    self._lattice, [base.label, self.resolve_label(annotated.label)]
                ),
            )
        # The slot is open.  A *raw* (non-term) label is the ⊥ placeholder
        # the base resolver puts on unannotated scalars -- a genuinely free
        # slot.  A term label came from another annotation slot: an explicit
        # declaration (ConstTerm) or a shared variable.
        if not isinstance(base.label, Term):
            return SecurityType(base.body, VarTerm(self._registry.var_for(annotated)))
        base_term = base.label
        if isinstance(base_term, ConstTerm):
            if self._lattice.equal(base_term.label, self._lattice.bottom):
                # The declaration explicitly pins the type public.  Joining a
                # variable onto ⊥ would simply *replace* the label, silently
                # overriding the declared sink -- keep it pinned, so a higher
                # flow into it is a conflict, exactly as for an explicit ⊥
                # annotation written at the use site.
                return SecurityType(base.body, base_term)
            # The declaration pins a non-⊥ label; the use site may still
            # *raise* it (join semantics): give the slot a variable joined
            # onto the base so flows above the base can be absorbed.
            var = self._registry.var_for(
                annotated, augments=True, floor=base_term.label
            )
            return SecurityType(
                base.body, join_terms(self._lattice, [base_term, VarTerm(var)])
            )
        # The underlying label is (or contains) another slot's variable --
        # declaration-site inference: share it, the flow can raise it there.
        return SecurityType(base.body, base_term)


# ---------------------------------------------------------------------------
# the generator


@dataclass
class GenerationResult:
    """Everything the constraint walk produced."""

    program: Program
    lattice: Lattice
    constraints: List[Constraint] = dataclass_field(default_factory=list)
    sites: List[InferenceSite] = dataclass_field(default_factory=list)
    registry: Optional[SiteRegistry] = None
    #: Label errors and other rule failures that are not flow constraints
    #: (unknown label spellings, forbidden declassification, ...).
    errors: List[IfcDiagnostic] = dataclass_field(default_factory=list)
    #: Inferred symbolic write bounds, by action / table name.
    function_bounds: Dict[str, Term] = dataclass_field(default_factory=dict)
    table_bounds: Dict[str, Term] = dataclass_field(default_factory=dict)
    #: Label variables standing for ``@pc(infer)`` control annotations,
    #: as (control, variable) pairs -- keyed by the declaration itself, not
    #: its name, since duplicate control names are legal.
    control_pc_vars: List[Tuple[d.ControlDecl, LabelVar]] = dataclass_field(
        default_factory=list
    )


class ConstraintGenerator:
    """Walks a program, mirroring the IFC rules, emitting constraints.

    A façade over the shared Figure 5–7 traversal
    (:class:`repro.flow.analysis.FlowAnalysis`) instantiated with the
    symbolic label algebra -- the checker runs the *same* traversal with
    the concrete algebra, so the generated constraints mirror the checked
    conditions by construction.
    """

    def __init__(
        self, lattice: Lattice, *, allow_declassification: bool = False
    ) -> None:
        from repro.flow.analysis import FlowAnalysis
        from repro.flow.symbolic import SymbolicAlgebra

        self._lattice = lattice
        self._algebra = SymbolicAlgebra(
            lattice, allow_declassification=allow_declassification
        )
        self._analysis = FlowAnalysis(self._algebra)

    def generate(self, program: Program) -> GenerationResult:
        self._analysis.run(program)
        algebra = self._algebra
        return GenerationResult(
            program,
            self._lattice,
            algebra.constraints.as_list(),
            algebra.registry.sites(),
            algebra.registry,
            list(algebra.errors),
            dict(self._analysis.function_bounds),
            dict(self._analysis.table_bounds),
            list(algebra.control_pc_vars),
        )


def generate_constraints(
    program: Program,
    lattice: Lattice,
    *,
    allow_declassification: bool = False,
) -> GenerationResult:
    """Walk ``program`` and return its label-inference constraint system."""
    generator = ConstraintGenerator(
        lattice, allow_declassification=allow_declassification
    )
    return generator.generate(program)
