"""Constraint generation: the Figure 5–7 rules, with unknowns.

:class:`ConstraintGenerator` walks the same AST as
:class:`repro.ifc.checker.IfcChecker` and visits the same side conditions,
but where the checker *tests* ``χ₁ ⊑ χ₂`` and reports a violation, the
generator *emits* the comparison as a :class:`~repro.inference.constraints.Constraint`
over label terms.  Security types are reused unchanged -- their ``label``
slots simply hold :class:`~repro.inference.terms.Term`\\ s instead of
concrete labels -- so the structural machinery of Figure 4 (field maps,
body compatibility, stacks) needs no duplication.

Label variables enter through :class:`InferenceLabeler`, a
:class:`~repro.ifc.convert.TypeLabeler` whose :meth:`attach_label` hook
allocates a fresh variable for every scalar annotation slot that is missing
or explicitly marked ``infer``, instead of defaulting to ⊥ or raising
:class:`~repro.ifc.convert.LabelResolutionError`.  Slots are memoised by
AST node, so every use of a ``typedef``/``header`` field shares the single
variable of its declaration site -- inference assigns labels to
*declarations*, exactly where the annotation would be written.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Tuple

from repro.ifc.checker import DIR_IN, DIR_INOUT, IfcChecker
from repro.ifc.context import SecurityContext, SecurityTypeDefs
from repro.ifc.convert import LabelResolutionError, TypeLabeler
from repro.ifc.declassify import DECLASSIFY_FUNCTIONS
from repro.ifc.errors import IfcDiagnostic, ViolationKind
from repro.ifc.security_types import (
    SBit,
    SBool,
    SFunction,
    SHeader,
    SInt,
    SMatchKind,
    SParam,
    SRecord,
    SStack,
    STable,
    SUnit,
    SecurityBody,
    SecurityType,
    bodies_compatible,
)
from repro.inference.constraints import Constraint, ConstraintSet
from repro.inference.terms import (
    ConstTerm,
    LabelVar,
    Term,
    VarSupply,
    VarTerm,
    as_term,
    join_terms,
    meet_terms,
)
from repro.lattice.base import Lattice, LatticeError
from repro.syntax import declarations as d
from repro.syntax import expressions as e
from repro.syntax import statements as s
from repro.syntax.declarations import Direction
from repro.syntax.program import Program
from repro.syntax.source import SourceSpan
from repro.syntax.types import AnnotatedType, HeaderType, RecordType, is_inference_marker
from repro.typechecker.checker import DEFAULT_MATCH_KINDS

# ---------------------------------------------------------------------------
# term-level analogues of the security-type helpers


def term_read_label(lattice: Lattice, sec_type: SecurityType) -> Term:
    """Term analogue of :func:`repro.ifc.security_types.read_label`."""
    body = sec_type.body
    if isinstance(body, (SRecord, SHeader)):
        return join_terms(
            lattice,
            [sec_type.label] + [term_read_label(lattice, f) for _, f in body.fields],
        )
    if isinstance(body, SStack):
        return join_terms(
            lattice, [sec_type.label, term_read_label(lattice, body.element)]
        )
    return as_term(sec_type.label)


def term_write_label(lattice: Lattice, sec_type: SecurityType) -> Term:
    """Term analogue of :func:`repro.ifc.checker.write_label`."""
    body = sec_type.body
    if isinstance(body, (SRecord, SHeader)):
        return meet_terms(
            lattice,
            [term_write_label(lattice, f) for _, f in body.fields] or [sec_type.label],
        )
    if isinstance(body, SStack):
        return term_write_label(lattice, body.element)
    return as_term(sec_type.label)


def term_join_into(lattice: Lattice, sec_type: SecurityType, term: Term) -> SecurityType:
    """Term analogue of :func:`repro.ifc.security_types.join_into`."""
    body = sec_type.body
    if isinstance(body, (SRecord, SHeader)):
        fields = tuple(
            (name, term_join_into(lattice, f, term)) for name, f in body.fields
        )
        new_body: SecurityBody = (
            SRecord(fields) if isinstance(body, SRecord) else SHeader(fields)
        )
        return SecurityType(new_body, sec_type.label)
    if isinstance(body, SStack):
        return SecurityType(
            SStack(term_join_into(lattice, body.element, term), body.size),
            sec_type.label,
        )
    return SecurityType(body, join_terms(lattice, [sec_type.label, term]))


def term_lower_to_bottom(lattice: Lattice, sec_type: SecurityType) -> SecurityType:
    """Term analogue of the checker's ``_lower_to_bottom`` (declassify)."""
    bottom = ConstTerm(lattice.bottom)
    body = sec_type.body
    if isinstance(body, (SRecord, SHeader)):
        fields = tuple(
            (name, term_lower_to_bottom(lattice, f)) for name, f in body.fields
        )
        lowered: SecurityBody = (
            SRecord(fields) if isinstance(body, SRecord) else SHeader(fields)
        )
        return SecurityType(lowered, bottom)
    if isinstance(body, SStack):
        return SecurityType(
            SStack(term_lower_to_bottom(lattice, body.element), body.size), bottom
        )
    return SecurityType(body, bottom)


# ---------------------------------------------------------------------------
# label-variable sites


@dataclass
class InferenceSite:
    """One annotation slot a label variable stands for.

    ``augments`` marks a use-site variable joined *onto* an underlying
    non-bottom label (``a_t x`` over an annotated ``typedef a_t``): the slot
    can raise the effective label but never lower it, and elaboration omits
    the annotation entirely when such a variable solves to ⊥.  ``floor`` is
    that underlying label, so reports can show the slot's *effective* label
    (``floor ⊔ solved``) rather than the bare variable's value.
    """

    var: LabelVar
    node: AnnotatedType
    hint: str
    augments: bool = False
    floor: Optional[object] = None

    @property
    def span(self) -> SourceSpan:
        return self.node.span


class SiteRegistry:
    """Maps annotation-slot AST nodes to their label variables.

    Keyed by node identity: the registry keeps every node alive, so ``id``
    reuse cannot alias two different slots, and repeated resolution of the
    same ``typedef``/``header`` field always yields the same variable.
    """

    def __init__(self, supply: VarSupply) -> None:
        self._supply = supply
        self._sites: Dict[int, InferenceSite] = {}
        self._hints: Dict[int, str] = {}
        self._order: List[InferenceSite] = []

    def suggest_hint(self, node: AnnotatedType, hint: str) -> None:
        self._hints.setdefault(id(node), hint)

    def var_for(
        self,
        node: AnnotatedType,
        *,
        augments: bool = False,
        floor: object = None,
    ) -> LabelVar:
        site = self._sites.get(id(node))
        if site is None:
            hint = self._hints.get(id(node), f"annotation at {node.span}")
            site = InferenceSite(
                self._supply.fresh(hint, node.span), node, hint, augments, floor
            )
            self._sites[id(node)] = site
            self._order.append(site)
        return site.var

    def site_of(self, node: AnnotatedType) -> Optional[InferenceSite]:
        return self._sites.get(id(node))

    def sites(self) -> List[InferenceSite]:
        return list(self._order)


class InferenceLabeler(TypeLabeler):
    """A :class:`TypeLabeler` producing term labels and label variables."""

    def __init__(
        self,
        lattice: Lattice,
        definitions: SecurityTypeDefs,
        registry: SiteRegistry,
    ) -> None:
        super().__init__(lattice, definitions)
        self._registry = registry

    def resolve_label(self, text: Optional[str]):
        if text is None:
            return ConstTerm(self.lattice.bottom)
        try:
            return ConstTerm(self.lattice.parse_label(text))
        except LatticeError as exc:
            if is_inference_marker(text):
                return ConstTerm(self.lattice.bottom)
            raise LabelResolutionError(str(exc)) from exc

    def slot_is_open(self, label: Optional[str]) -> bool:
        """Whether an annotation slot asks to be inferred.

        A spelling that names an actual lattice level is never open (a
        lattice may define a level called ``Infer``); only a missing
        annotation or an unparseable ``infer`` / ``?`` marker is.
        """
        if label is None:
            return True
        if not is_inference_marker(label):
            return False
        try:
            self.lattice.parse_label(label)
            return False
        except LatticeError:
            return True

    def attach_label(self, annotated: AnnotatedType, base: SecurityType) -> SecurityType:
        composite = isinstance(base.body, (SRecord, SHeader, SStack))
        missing = self.slot_is_open(annotated.label)
        if composite:
            # Per-field slots carry the variables; the use-site slot only
            # matters when it names an explicit label to join in.
            if missing:
                return base
            return term_join_into(self._lattice, base, self.resolve_label(annotated.label))
        if not missing:
            return SecurityType(
                base.body,
                join_terms(
                    self._lattice, [base.label, self.resolve_label(annotated.label)]
                ),
            )
        # The slot is open.  A *raw* (non-term) label is the ⊥ placeholder
        # the base resolver puts on unannotated scalars -- a genuinely free
        # slot.  A term label came from another annotation slot: an explicit
        # declaration (ConstTerm) or a shared variable.
        if not isinstance(base.label, Term):
            return SecurityType(base.body, VarTerm(self._registry.var_for(annotated)))
        base_term = base.label
        if isinstance(base_term, ConstTerm):
            if self._lattice.equal(base_term.label, self._lattice.bottom):
                # The declaration explicitly pins the type public.  Joining a
                # variable onto ⊥ would simply *replace* the label, silently
                # overriding the declared sink -- keep it pinned, so a higher
                # flow into it is a conflict, exactly as for an explicit ⊥
                # annotation written at the use site.
                return SecurityType(base.body, base_term)
            # The declaration pins a non-⊥ label; the use site may still
            # *raise* it (join semantics): give the slot a variable joined
            # onto the base so flows above the base can be absorbed.
            var = self._registry.var_for(
                annotated, augments=True, floor=base_term.label
            )
            return SecurityType(
                base.body, join_terms(self._lattice, [base_term, VarTerm(var)])
            )
        # The underlying label is (or contains) another slot's variable --
        # declaration-site inference: share it, the flow can raise it there.
        return SecurityType(base.body, base_term)


# ---------------------------------------------------------------------------
# the generator


@dataclass
class GenerationResult:
    """Everything the constraint walk produced."""

    program: Program
    lattice: Lattice
    constraints: List[Constraint] = dataclass_field(default_factory=list)
    sites: List[InferenceSite] = dataclass_field(default_factory=list)
    registry: Optional[SiteRegistry] = None
    #: Label errors and other rule failures that are not flow constraints
    #: (unknown label spellings, forbidden declassification, ...).
    errors: List[IfcDiagnostic] = dataclass_field(default_factory=list)
    #: Inferred symbolic write bounds, by action / table name.
    function_bounds: Dict[str, Term] = dataclass_field(default_factory=dict)
    table_bounds: Dict[str, Term] = dataclass_field(default_factory=dict)
    #: Label variables standing for ``@pc(infer)`` control annotations,
    #: as (control, variable) pairs -- keyed by the declaration itself, not
    #: its name, since duplicate control names are legal.
    control_pc_vars: List[Tuple[d.ControlDecl, LabelVar]] = dataclass_field(
        default_factory=list
    )


class ConstraintGenerator:
    """Walks a program, mirroring the IFC rules, emitting constraints."""

    def __init__(
        self, lattice: Lattice, *, allow_declassification: bool = False
    ) -> None:
        self._lattice = lattice
        self._allow_declassification = allow_declassification
        self._supply = VarSupply()
        self._registry = SiteRegistry(self._supply)
        self._constraints = ConstraintSet()
        self._errors: List[IfcDiagnostic] = []
        self._write_bounds: List[List[Term]] = []
        #: Spans of declassify uses in the enclosing function body: each one
        #: obliges ``pc_fn ⊑ ⊥`` (the checker re-walks the body under pc_fn
        #: and tests exactly that; see _generate_function_decl).
        self._pc_obligations: List[List[SourceSpan]] = []
        self._function_bounds: Dict[str, Term] = {}
        self._table_bounds: Dict[str, Term] = {}
        self._control_pc_vars: List[Tuple[d.ControlDecl, LabelVar]] = []
        #: Enclosing control/action names, innermost last (scopes var hints).
        self._owner: List[str] = []
        self._bottom = ConstTerm(lattice.bottom)

    # ------------------------------------------------------------------ plumbing

    def _constrain(
        self,
        lhs: object,
        rhs: object,
        span: SourceSpan,
        rule: str,
        kind: ViolationKind,
        reason: str,
    ) -> None:
        lhs_term, rhs_term = as_term(lhs), as_term(rhs)
        if isinstance(lhs_term, ConstTerm) and isinstance(rhs_term, ConstTerm):
            if self._lattice.leq(lhs_term.label, rhs_term.label):
                return  # trivially satisfied; keep the system small
        elif lhs_term == self._bottom:
            return  # ⊥ flows anywhere
        self._constraints.add(Constraint(lhs_term, rhs_term, span, rule, kind, reason))

    def _error(
        self, kind: ViolationKind, message: str, span: SourceSpan, rule: str
    ) -> None:
        self._errors.append(IfcDiagnostic(kind, message, span, rule))

    def _record_write(self, bound: Term) -> None:
        if self._write_bounds:
            self._write_bounds[-1].append(bound)

    def _security_type(
        self, annotated: AnnotatedType, labeler: InferenceLabeler, span: SourceSpan
    ) -> Optional[SecurityType]:
        try:
            return labeler.security_type(annotated)
        except LabelResolutionError as exc:
            self._error(ViolationKind.LABEL_ERROR, str(exc), span, rule="labels")
            return None

    def _read(self, sec_type: SecurityType) -> Term:
        return term_read_label(self._lattice, sec_type)

    def _write(self, sec_type: SecurityType) -> Term:
        return term_write_label(self._lattice, sec_type)

    def _join(self, *terms: object) -> Term:
        return join_terms(self._lattice, terms)

    # ------------------------------------------------------------------ entry point

    def generate(self, program: Program) -> GenerationResult:
        delta = SecurityTypeDefs()
        labeler = InferenceLabeler(self._lattice, delta, self._registry)
        gamma = SecurityContext()
        kind = SecurityType(SMatchKind(), self._bottom)
        for member in DEFAULT_MATCH_KINDS:
            gamma.bind(member, kind)
        self._suggest_declaration_hints(program)
        for decl in program.declarations:
            gamma = self.generate_declaration(decl, gamma, labeler, self._bottom)
        for control in program.controls:
            self.generate_control(control, gamma, labeler)
        return GenerationResult(
            program,
            self._lattice,
            self._constraints.as_list(),
            self._registry.sites(),
            self._registry,
            list(self._errors),
            dict(self._function_bounds),
            dict(self._table_bounds),
            list(self._control_pc_vars),
        )

    def _suggest_declaration_hints(self, program: Program) -> None:
        """Attach readable hints to the annotation slots of declared types."""
        for decl in program.iter_declarations():
            if isinstance(decl, (d.HeaderDecl, d.StructDecl)):
                for field in decl.fields:
                    self._registry.suggest_hint(
                        field.ty, f"field {decl.name}.{field.name}"
                    )
            elif isinstance(decl, d.TypedefDecl):
                self._registry.suggest_hint(decl.ty, f"typedef {decl.name}")

    # ------------------------------------------------------------------ controls

    def generate_control(
        self,
        control: d.ControlDecl,
        gamma: SecurityContext,
        labeler: InferenceLabeler,
    ) -> None:
        pc = self._resolve_control_pc(control)
        scope = gamma.child()
        for param in control.params:
            self._registry.suggest_hint(
                param.ty, f"parameter {param.name} of control {control.name}"
            )
            sec_type = self._security_type(param.ty, labeler, param.span)
            if sec_type is not None:
                scope.bind(param.name, sec_type)
        self._owner.append(control.name)
        try:
            for decl in control.local_declarations:
                scope = self.generate_declaration(decl, scope, labeler, pc)
            self.generate_statement(control.apply_block, scope, labeler, pc)
        finally:
            self._owner.pop()

    def _resolve_control_pc(self, control: d.ControlDecl) -> Term:
        if control.pc_label is None:
            return self._bottom
        try:
            return ConstTerm(self._lattice.parse_label(control.pc_label))
        except LatticeError:
            if is_inference_marker(control.pc_label):
                var = self._supply.fresh(
                    f"pc of control {control.name}", control.span
                )
                self._control_pc_vars.append((control, var))
                return VarTerm(var)
            self._error(
                ViolationKind.LABEL_ERROR,
                f"unknown pc label {control.pc_label!r} on control {control.name!r}",
                control.span,
                rule="@pc",
            )
            return self._bottom

    # ------------------------------------------------------------------ declarations (Figure 7)

    def generate_declaration(
        self,
        decl: d.Declaration,
        gamma: SecurityContext,
        labeler: InferenceLabeler,
        pc: Term,
    ) -> SecurityContext:
        if isinstance(decl, d.VarDecl):
            return self._generate_var_decl(decl, gamma, labeler, pc)
        if isinstance(decl, d.TypedefDecl):
            labeler.definitions.define(decl.name, decl.ty)
            return gamma
        if isinstance(decl, d.HeaderDecl):
            labeler.definitions.define(
                decl.name, AnnotatedType(HeaderType(decl.fields), None, decl.span)
            )
            return gamma
        if isinstance(decl, d.StructDecl):
            labeler.definitions.define(
                decl.name, AnnotatedType(RecordType(decl.fields), None, decl.span)
            )
            return gamma
        if isinstance(decl, d.MatchKindDecl):
            kind = SecurityType(SMatchKind(), self._bottom)
            for member in decl.members:
                gamma.bind(member, kind)
            return gamma
        if isinstance(decl, d.FunctionDecl):
            return self._generate_function_decl(decl, gamma, labeler)
        if isinstance(decl, d.TableDecl):
            return self._generate_table_decl(decl, gamma, labeler, pc)
        # Unsupported declarations are the (re-run) checker's problem.
        return gamma

    # -- T-VarDecl / T-VarInit ------------------------------------------------

    def _generate_var_decl(
        self,
        decl: d.VarDecl,
        gamma: SecurityContext,
        labeler: InferenceLabeler,
        pc: Term,
    ) -> SecurityContext:
        owner = f" in {self._owner[-1]}" if self._owner else ""
        self._registry.suggest_hint(decl.ty, f"variable {decl.name}{owner}")
        declared = self._security_type(decl.ty, labeler, decl.span)
        if declared is None:
            return gamma
        if decl.init is not None:
            init_type, _ = self.generate_expression(decl.init, gamma, labeler, pc)
            if init_type is not None and bodies_compatible(declared.body, init_type.body):
                self._emit_flow(
                    init_type,
                    declared,
                    decl.span,
                    rule="T-VarInit",
                    kind=ViolationKind.EXPLICIT_FLOW,
                    reason=f"initialiser of {decl.name!r} flows into its declared label",
                )
        gamma.bind(decl.name, declared)
        return gamma

    # -- T-FuncDecl -----------------------------------------------------------

    def _generate_function_decl(
        self,
        decl: d.FunctionDecl,
        gamma: SecurityContext,
        labeler: InferenceLabeler,
    ) -> SecurityContext:
        parameters: List[SParam] = []
        body_scope = gamma.child()
        for param in decl.params:
            self._registry.suggest_hint(
                param.ty, f"parameter {param.name} of {decl.name}"
            )
            sec_type = self._security_type(param.ty, labeler, param.span)
            if sec_type is None:
                sec_type = SecurityType(SUnit(), self._bottom)
            body_scope.bind(param.name, sec_type)
            parameters.append(
                SParam(
                    param.direction.effective().value,
                    sec_type,
                    param.name,
                    control_plane=param.direction is Direction.NONE,
                )
            )
        if decl.return_type is None:
            return_type = SecurityType(SUnit(), self._bottom)
        else:
            self._registry.suggest_hint(
                decl.return_type, f"return type of {decl.name}"
            )
            resolved = self._security_type(decl.return_type, labeler, decl.span)
            return_type = resolved or SecurityType(SUnit(), self._bottom)
        body_scope.bind(SecurityContext.RETURN_KEY, return_type)

        # One walk under a ⊥ pc both collects the write bounds and emits the
        # body's constraints.  Re-walking under pc_fn (as the checker does)
        # would only add constraints of the shape ``⨅ targets ⊑ target_i``,
        # which hold by construction -- except at declassify sites, whose
        # ``pc ⊑ ⊥`` condition does involve pc_fn; those are collected as
        # obligations during the walk and emitted against pc_fn below.
        self._write_bounds.append([])
        self._pc_obligations.append([])
        self._owner.append(decl.name)
        try:
            self.generate_statement(decl.body, body_scope, labeler, self._bottom)
        finally:
            self._owner.pop()
            obligations = self._pc_obligations.pop()
            bounds = self._write_bounds.pop()
        pc_fn = meet_terms(self._lattice, bounds)
        for span in obligations:
            self._constrain(
                pc_fn,
                self._bottom,
                span,
                rule="T-Declassify",
                kind=ViolationKind.IMPLICIT_FLOW,
                reason=(
                    f"declassification inside {decl.name!r} requires the "
                    "function's write bound pc_fn to be public"
                ),
            )

        fn_type = SecurityType(
            SFunction(tuple(parameters), pc_fn, return_type), self._bottom
        )
        gamma.bind(decl.name, fn_type)
        self._function_bounds[decl.name] = pc_fn
        return gamma

    # -- T-TblDecl ------------------------------------------------------------

    def _generate_table_decl(
        self,
        decl: d.TableDecl,
        gamma: SecurityContext,
        labeler: InferenceLabeler,
        pc: Term,
    ) -> SecurityContext:
        key_labels: List[Tuple[d.TableKey, Term]] = []
        for key in decl.keys:
            key_type, _ = self.generate_expression(key.expression, gamma, labeler, pc)
            if key_type is None:
                continue
            key_labels.append((key, self._read(key_type)))

        action_bounds: List[Term] = []
        for action_ref in decl.actions:
            bound = self._generate_table_action_ref(
                action_ref, gamma, labeler, key_labels, pc, decl.name
            )
            if bound is not None:
                action_bounds.append(bound)

        pc_tbl = meet_terms(self._lattice, action_bounds)
        self._table_bounds[decl.name] = pc_tbl
        gamma.bind(decl.name, SecurityType(STable(pc_tbl), self._bottom))
        return gamma

    def _generate_table_action_ref(
        self,
        ref: d.ActionRef,
        gamma: SecurityContext,
        labeler: InferenceLabeler,
        key_labels: List[Tuple[d.TableKey, Term]],
        pc: Term,
        table_name: str,
    ) -> Optional[Term]:
        target = gamma.lookup(ref.name)
        if target is None or not isinstance(target.body, SFunction):
            return None
        fn = target.body
        for key, key_label in key_labels:
            self._constrain(
                key_label,
                fn.pc_fn,
                key.span,
                rule="T-TblDecl",
                kind=ViolationKind.TABLE_KEY_FLOW,
                reason=(
                    f"table key {key.expression.describe()!r} of {table_name!r} must "
                    f"stay below the write bound of action {ref.name!r}"
                ),
            )
        for argument, parameter in zip(ref.arguments, fn.parameters):
            arg_type, arg_dir = self.generate_expression(argument, gamma, labeler, pc)
            if arg_type is None:
                continue
            self._emit_argument_flow(argument, arg_type, arg_dir, parameter, ref.name)
        return fn.pc_fn

    # ------------------------------------------------------------------ statements (Figure 6)

    def generate_statement(
        self,
        stmt: s.Statement,
        gamma: SecurityContext,
        labeler: InferenceLabeler,
        pc: Term,
    ) -> SecurityContext:
        if isinstance(stmt, s.Block):
            scope = gamma.child()
            for inner in stmt.statements:
                scope = self.generate_statement(inner, scope, labeler, pc)
            return gamma
        if isinstance(stmt, s.Assign):
            self._generate_assign(stmt, gamma, labeler, pc)
            return gamma
        if isinstance(stmt, s.If):
            guard_type, _ = self.generate_expression(stmt.condition, gamma, labeler, pc)
            guard_label = (
                self._read(guard_type) if guard_type is not None else self._bottom
            )
            branch_pc = self._join(pc, guard_label)
            self.generate_statement(stmt.then_branch, gamma, labeler, branch_pc)
            self.generate_statement(stmt.else_branch, gamma, labeler, branch_pc)
            return gamma
        if isinstance(stmt, s.CallStmt):
            self._generate_call_statement(stmt, gamma, labeler, pc)
            return gamma
        if isinstance(stmt, s.Exit):
            self._generate_control_signal(stmt.span, "exit", pc, rule="T-Exit")
            return gamma
        if isinstance(stmt, s.Return):
            self._generate_return(stmt, gamma, labeler, pc)
            return gamma
        if isinstance(stmt, s.VarDeclStmt):
            return self._generate_var_decl(stmt.declaration, gamma, labeler, pc)
        return gamma

    # -- T-Assign --------------------------------------------------------------

    def _generate_assign(
        self, stmt: s.Assign, gamma: SecurityContext, labeler: InferenceLabeler, pc: Term
    ) -> None:
        target_type, target_dir = self.generate_expression(
            stmt.target, gamma, labeler, pc
        )
        value_type, _ = self.generate_expression(stmt.value, gamma, labeler, pc)
        if target_type is None or value_type is None:
            return
        target_bound = self._write(target_type)
        self._record_write(target_bound)
        if target_dir != DIR_INOUT:
            # Assignment to a read-only expression: the checker's TYPE_ERROR,
            # not a flow -- emitting constraints here would propagate labels
            # along an assignment that can never execute.
            return
        if not bodies_compatible(target_type.body, value_type.body):
            # Shape mismatch: the checker returns before its flow and pc
            # checks too; constraints here would blame labels for what is
            # really a type error.
            return
        self._emit_flow(
            value_type,
            target_type,
            stmt.span,
            rule="T-Assign",
            kind=ViolationKind.EXPLICIT_FLOW,
            reason=(
                f"{stmt.value.describe()!r} flows into {stmt.target.describe()!r}"
            ),
        )
        self._constrain(
            pc,
            target_bound,
            stmt.span,
            rule="T-Assign",
            kind=ViolationKind.IMPLICIT_FLOW,
            reason=(
                f"assignment to {stmt.target.describe()!r} must be writable at "
                "the level of the surrounding branch or table key"
            ),
        )

    # -- T-FnCallStmt / T-TblCall ----------------------------------------------

    def _generate_call_statement(
        self, stmt: s.CallStmt, gamma: SecurityContext, labeler: InferenceLabeler, pc: Term
    ) -> None:
        call = stmt.call
        callee_type, _ = self.generate_expression(call.callee, gamma, labeler, pc)
        if callee_type is None:
            return
        if isinstance(callee_type.body, STable):
            pc_tbl = as_term(callee_type.body.pc_tbl)
            self._record_write(pc_tbl)
            self._constrain(
                pc,
                pc_tbl,
                stmt.span,
                rule="T-TblCall",
                kind=ViolationKind.IMPLICIT_FLOW,
                reason=(
                    f"table {call.callee.describe()!r} is applied in a guarded "
                    "context; its write bound must dominate the guard"
                ),
            )
            return
        self.generate_expression(call, gamma, labeler, pc)

    # -- T-Exit / T-Return -------------------------------------------------------

    def _generate_control_signal(
        self, span: SourceSpan, keyword: str, pc: Term, rule: str
    ) -> None:
        self._record_write(self._bottom)
        self._constrain(
            pc,
            self._bottom,
            span,
            rule=rule,
            kind=ViolationKind.CONTROL_SIGNAL,
            reason=f"{keyword!r} statements only type check under a public pc",
        )

    def _generate_return(
        self, stmt: s.Return, gamma: SecurityContext, labeler: InferenceLabeler, pc: Term
    ) -> None:
        self._generate_control_signal(stmt.span, "return", pc, rule="T-Return")
        expected = gamma.lookup(SecurityContext.RETURN_KEY)
        if stmt.value is None or expected is None:
            return
        value_type, _ = self.generate_expression(stmt.value, gamma, labeler, pc)
        if value_type is None:
            return
        if bodies_compatible(expected.body, value_type.body):
            self._emit_flow(
                value_type,
                expected,
                stmt.span,
                rule="T-Return",
                kind=ViolationKind.EXPLICIT_FLOW,
                reason="return value flows into the function's return label",
            )

    # ------------------------------------------------------------------ expressions (Figure 5)

    def generate_expression(
        self,
        expr: e.Expression,
        gamma: SecurityContext,
        labeler: InferenceLabeler,
        pc: Term,
    ) -> Tuple[Optional[SecurityType], str]:
        bottom = self._bottom
        if isinstance(expr, e.BoolLiteral):
            return SecurityType(SBool(), bottom), DIR_IN
        if isinstance(expr, e.IntLiteral):
            body: SecurityBody = SInt() if expr.width is None else SBit(expr.width)
            return SecurityType(body, bottom), DIR_IN
        if isinstance(expr, e.Var):
            sec_type = gamma.lookup(expr.name)
            if sec_type is None:
                return None, DIR_IN
            return sec_type, DIR_INOUT
        if isinstance(expr, e.BinaryOp):
            left_type, _ = self.generate_expression(expr.left, gamma, labeler, pc)
            right_type, _ = self.generate_expression(expr.right, gamma, labeler, pc)
            if left_type is None or right_type is None:
                return None, DIR_IN
            label = self._join(self._read(left_type), self._read(right_type))
            result_body = IfcChecker._binary_result_body(
                expr.op, left_type.body, right_type.body
            )
            return SecurityType(result_body, label), DIR_IN
        if isinstance(expr, e.UnaryOp):
            operand_type, _ = self.generate_expression(expr.operand, gamma, labeler, pc)
            if operand_type is None:
                return None, DIR_IN
            return operand_type.with_label(self._read(operand_type)), DIR_IN
        if isinstance(expr, e.RecordLiteral):
            fields = []
            for name, value in expr.fields:
                value_type, _ = self.generate_expression(value, gamma, labeler, pc)
                if value_type is None:
                    return None, DIR_IN
                fields.append((name, value_type))
            return SecurityType(SRecord(tuple(fields)), bottom), DIR_IN
        if isinstance(expr, e.FieldAccess):
            target_type, direction = self.generate_expression(
                expr.target, gamma, labeler, pc
            )
            if target_type is None or not isinstance(
                target_type.body, (SRecord, SHeader)
            ):
                return None, DIR_IN
            field_type = target_type.body.field_named(expr.field_name)
            if field_type is None:
                return None, DIR_IN
            return field_type, direction
        if isinstance(expr, e.Index):
            return self._generate_index(expr, gamma, labeler, pc)
        if isinstance(expr, e.Call):
            if (
                isinstance(expr.callee, e.Var)
                and expr.callee.name in DECLASSIFY_FUNCTIONS
                and gamma.lookup(expr.callee.name) is None
            ):
                return self._generate_declassify(expr, gamma, labeler, pc)
            return self._generate_call(expr, gamma, labeler, pc)
        return None, DIR_IN

    # -- T-Index -----------------------------------------------------------------

    def _generate_index(
        self, expr: e.Index, gamma: SecurityContext, labeler: InferenceLabeler, pc: Term
    ) -> Tuple[Optional[SecurityType], str]:
        array_type, direction = self.generate_expression(expr.array, gamma, labeler, pc)
        index_type, _ = self.generate_expression(expr.index, gamma, labeler, pc)
        if array_type is None or not isinstance(array_type.body, SStack):
            return None, DIR_IN
        element = array_type.body.element
        if index_type is not None:
            self._constrain(
                self._read(index_type),
                as_term(element.label),
                expr.span,
                rule="T-Index",
                kind=ViolationKind.EXPLICIT_FLOW,
                reason=(
                    f"index {expr.index.describe()!r} leaks through the selected "
                    "stack element"
                ),
            )
        return element, direction

    # -- declassify / endorse ------------------------------------------------------

    def _generate_declassify(
        self, expr: e.Call, gamma: SecurityContext, labeler: InferenceLabeler, pc: Term
    ) -> Tuple[Optional[SecurityType], str]:
        primitive = expr.callee.name  # type: ignore[union-attr]
        if len(expr.arguments) != 1:
            self._error(
                ViolationKind.TYPE_ERROR,
                f"{primitive} takes exactly one argument",
                expr.span,
                rule="T-Declassify",
            )
            return None, DIR_IN
        argument = expr.arguments[0]
        arg_type, _ = self.generate_expression(argument, gamma, labeler, pc)
        if arg_type is None:
            return None, DIR_IN
        if not self._allow_declassification:
            self._error(
                ViolationKind.DECLASSIFICATION,
                f"{primitive}({argument.describe()}) is not permitted: run the "
                "checker with declassification enabled (p4bid --allow-declassify) "
                "to accept audited releases",
                expr.span,
                rule="T-Declassify",
            )
            return arg_type, DIR_IN
        self._constrain(
            pc,
            self._bottom,
            expr.span,
            rule="T-Declassify",
            kind=ViolationKind.IMPLICIT_FLOW,
            reason=f"{primitive} may only be used in a public context",
        )
        if self._pc_obligations:
            self._pc_obligations[-1].append(expr.span)
        return term_lower_to_bottom(self._lattice, arg_type), DIR_IN

    # -- T-Call --------------------------------------------------------------------

    def _generate_call(
        self, expr: e.Call, gamma: SecurityContext, labeler: InferenceLabeler, pc: Term
    ) -> Tuple[Optional[SecurityType], str]:
        callee_type, _ = self.generate_expression(expr.callee, gamma, labeler, pc)
        if callee_type is None:
            return None, DIR_IN
        if isinstance(callee_type.body, STable):
            return SecurityType(SUnit(), self._bottom), DIR_IN
        if not isinstance(callee_type.body, SFunction):
            return None, DIR_IN
        fn = callee_type.body
        self._record_write(fn.pc_fn)
        self._constrain(
            pc,
            fn.pc_fn,
            expr.span,
            rule="T-FnCall",
            kind=ViolationKind.CALL_CONTEXT,
            reason=(
                f"{expr.callee.describe()!r} is called in a guarded context; its "
                "write bound must dominate the guard"
            ),
        )
        for argument, parameter in zip(expr.arguments, fn.parameters):
            arg_type, arg_dir = self.generate_expression(argument, gamma, labeler, pc)
            if arg_type is None:
                continue
            self._emit_argument_flow(
                argument, arg_type, arg_dir, parameter, expr.callee.describe()
            )
        return fn.return_type, DIR_IN

    def _emit_argument_flow(
        self,
        argument: e.Expression,
        arg_type: SecurityType,
        arg_dir: str,
        parameter: SParam,
        callee: str,
    ) -> None:
        if not bodies_compatible(parameter.sec_type.body, arg_type.body):
            return
        if parameter.direction in (DIR_INOUT, "out"):
            self._record_write(self._write(arg_type))
            if arg_dir != DIR_INOUT:
                return  # not an l-value: the checker's TYPE_ERROR, not ours
            # T-SubType-In forbids relabelling writable arguments: equality.
            reason = (
                f"inout argument {argument.describe()!r} must carry exactly the "
                f"label of parameter {parameter.name!r} of {callee!r}"
            )
            self._emit_flow(
                arg_type,
                parameter.sec_type,
                argument.span,
                rule="T-SubType-In",
                kind=ViolationKind.ARGUMENT_FLOW,
                reason=reason,
            )
            self._emit_flow(
                parameter.sec_type,
                arg_type,
                argument.span,
                rule="T-SubType-In",
                kind=ViolationKind.ARGUMENT_FLOW,
                reason=reason,
            )
            return
        self._emit_flow(
            arg_type,
            parameter.sec_type,
            argument.span,
            rule="T-Call",
            kind=ViolationKind.ARGUMENT_FLOW,
            reason=(
                f"argument {argument.describe()!r} flows into parameter "
                f"{parameter.name!r} of {callee!r}"
            ),
        )

    # ------------------------------------------------------------------ flows

    def _emit_flow(
        self,
        source: SecurityType,
        destination: SecurityType,
        span: SourceSpan,
        *,
        rule: str,
        kind: ViolationKind,
        reason: str,
    ) -> None:
        """Term analogue of ``flow_allowed``: one constraint per leaf."""
        src_body, dst_body = source.body, destination.body
        if isinstance(dst_body, (SRecord, SHeader)) and type(src_body) is type(dst_body):
            src_map = src_body.field_map()
            for name, dst_field in dst_body.fields:
                src_field = src_map.get(name)
                if src_field is None:
                    return
                self._emit_flow(
                    src_field, dst_field, span, rule=rule, kind=kind, reason=reason
                )
            return
        if isinstance(dst_body, SStack) and isinstance(src_body, SStack):
            if dst_body.size != src_body.size:
                return
            self._emit_flow(
                src_body.element,
                dst_body.element,
                span,
                rule=rule,
                kind=kind,
                reason=reason,
            )
            return
        self._constrain(
            as_term(source.label), as_term(destination.label), span, rule, kind, reason
        )


def generate_constraints(
    program: Program,
    lattice: Lattice,
    *,
    allow_declassification: bool = False,
) -> GenerationResult:
    """Walk ``program`` and return its label-inference constraint system."""
    generator = ConstraintGenerator(
        lattice, allow_declassification=allow_declassification
    )
    return generator.generate(program)
