"""The propagation-graph subsystem behind the constraint solver.

The seed solver normalised constraints into a flat edge list and ran one
global Kleene worklist over it.  That is fine at case-study size but wastes
work at scale: edges are revisited in arbitrary order, acyclic regions are
re-examined long after they have converged, and nothing is reusable between
solves.  This module makes the propagation structure explicit:

* :class:`PropagationEdge` -- one *deduplicated* edge ``lhs → target``
  (with the optional join *cover*), carrying every constraint that gave
  rise to it so unsat cores keep full provenance;
* :class:`PropagationGraph` -- edges, checks and the variable-level
  adjacency built **once** from a constraint list, condensed into strongly
  connected components with Tarjan's algorithm;
* SCC-scheduled solving -- components are processed in topological order,
  so every acyclic region is solved in a single pass over its in-edges and
  Kleene iteration is confined to components that are genuine cycles;
* cone-of-influence queries -- the forward closure of a set of label
  slots, which is exactly the region an incremental re-solve (a restricted
  :meth:`PropagationGraph.propagate`, wrapped by
  :meth:`repro.inference.engine.Solver.resolve`) has to revisit after an
  edit.

Because an SCC is either entirely inside or entirely outside the forward
closure of any slot set, an incremental re-solve simply resets the cone to
``⊥`` (plus pinned edit values) and replays the schedule restricted to the
cone's components; everything upstream keeps its converged values and is
read, never written.

:class:`SolverStats` records what the scheduler did -- component counts,
edges visited, worklist pops, passes per component -- and is threaded
through :class:`~repro.inference.solve.Solution` into the pipeline report
and the CLI (``p4bid --solver-stats``).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.inference.constraints import Constraint
from repro.inference.solve import (
    InferenceConflict,
    InferenceError,
    Solution,
    _height_bound,
    _normalise,
)
from repro.inference.terms import LabelVar, Term, evaluate, free_vars
from repro.lattice.base import Label, Lattice
from repro.telemetry.instrument import CountingLattice
from repro.telemetry.recorder import current_recorder


class NormalisationCache:
    """Memoised constraint normalisation, shared across graph rebuilds.

    :func:`~repro.inference.solve._normalise` decomposes a constraint into
    propagation-edge shapes and residual checks purely from its ``(lhs,
    rhs)`` term pair -- the span, rule and provenance ride along untouched.
    A workspace rebuilding its graph after an edit therefore re-derives
    identical shapes for every *surviving* constraint; this cache skips
    that re-derivation (the originating constraint is re-attached per
    call, so provenance stays exact).

    The decomposition consults the lattice (constant folding of join
    covers), so a cache is bound to one lattice and refuses reuse under
    another.
    """

    def __init__(self, lattice: Lattice) -> None:
        self.lattice = lattice
        self._memo: Dict[
            Tuple[Term, Term],
            Tuple[
                Tuple[Tuple[Term, LabelVar, Optional[Label]], ...],
                Tuple[Tuple[Term, Term], ...],
            ],
        ] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._memo)

    def normalise(
        self,
        constraint: Constraint,
        raw: List[Tuple[Term, LabelVar, Constraint, Optional[Label]]],
        checks: List[Tuple[Term, Term, Constraint]],
    ) -> None:
        """Append ``constraint``'s shapes to ``raw`` / ``checks``."""
        key = (constraint.lhs, constraint.rhs)
        entry = self._memo.get(key)
        if entry is None:
            self.misses += 1
            local_raw: List[Tuple[Term, LabelVar, Constraint, Optional[Label]]] = []
            local_checks: List[Tuple[Term, Term, Constraint]] = []
            _normalise(
                self.lattice, constraint, constraint.lhs, constraint.rhs,
                local_raw, local_checks,
            )
            entry = (
                tuple((lhs, target, cover) for lhs, target, _c, cover in local_raw),
                tuple((lhs, rhs) for lhs, rhs, _c in local_checks),
            )
            self._memo[key] = entry
        else:
            self.hits += 1
        for lhs, target, cover in entry[0]:
            raw.append((lhs, target, constraint, cover))
        for lhs, rhs in entry[1]:
            checks.append((lhs, rhs, constraint))


@dataclass(frozen=True)
class PropagationEdge:
    """One deduplicated propagation edge ``lhs → target``.

    ``cover`` is the constant part of a join on the right-hand side: the
    edge propagates nothing while the evaluated left side fits under it.
    ``constraints`` holds *every* originating constraint that normalised to
    this edge (repeated use sites collapse to one edge but keep all their
    provenance for unsat cores); ``sources`` caches ``free_vars(lhs)`` in
    uid order so scheduling and slicing never re-derive it.
    """

    lhs: Term
    target: LabelVar
    cover: Optional[Label]
    constraints: Tuple[Constraint, ...]
    sources: Tuple[LabelVar, ...]

    @property
    def origin(self) -> Constraint:
        """The first constraint that produced this edge."""
        return self.constraints[0]


@dataclass
class SolverStats:
    """What the SCC-condensed scheduler did during one solve.

    ``edges_visited`` counts the *distinct* edges the schedule touched
    (every in-edge of every solved component -- for an incremental
    re-solve, the size of the replayed cone); ``worklist_pops`` counts
    total edge evaluations, so it exceeds ``edges_visited`` exactly when
    cyclic components iterate.  ``max_passes`` is the worst number of
    sweeps any single component needed before converging (1 for every
    acyclic component).
    """

    variable_count: int = 0
    edge_count: int = 0
    check_count: int = 0
    scc_count: int = 0
    cyclic_scc_count: int = 0
    largest_scc: int = 0
    edges_visited: int = 0
    worklist_pops: int = 0
    max_passes: int = 0
    components_solved: int = 0
    solve_ms: float = 0.0
    #: What the constant-label pre-solve reduction (``solve(presolve=True)``,
    #: :mod:`repro.analysis.presolve`) folded away before Kleene iteration:
    #: variables whose least value was fixed by constant propagation, and
    #: the edges into them that the schedule therefore never visited.
    presolve_resolved_vars: int = 0
    presolve_pruned_edges: int = 0
    presolve_ms: float = 0.0
    #: Which backend produced these stats: ``"graph"`` (the SCC-scheduled
    #: object solver), ``"packed"`` (:mod:`repro.inference.packed`) or
    #: ``"worklist"``.  The remaining fields are packed-backend counters:
    #: time spent encoding the graph into int arrays, batched sweep count,
    #: topological wave count / widest wave / independent cluster count of
    #: the component DAG, the worker processes used, and -- when the packed
    #: backend delegated back to the object solver -- why.
    backend: str = "graph"
    encode_ms: float = 0.0
    sweeps: int = 0
    waves: int = 0
    max_wave_width: int = 0
    clusters: int = 0
    workers: int = 1
    fallback_reason: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "encode_ms": self.encode_ms,
            "sweeps": self.sweeps,
            "waves": self.waves,
            "max_wave_width": self.max_wave_width,
            "clusters": self.clusters,
            "workers": self.workers,
            "fallback_reason": self.fallback_reason,
            "variables": self.variable_count,
            "edges": self.edge_count,
            "checks": self.check_count,
            "sccs": self.scc_count,
            "cyclic_sccs": self.cyclic_scc_count,
            "largest_scc": self.largest_scc,
            "edges_visited": self.edges_visited,
            "worklist_pops": self.worklist_pops,
            "max_passes": self.max_passes,
            "components_solved": self.components_solved,
            "solve_ms": self.solve_ms,
            "presolve_resolved_vars": self.presolve_resolved_vars,
            "presolve_pruned_edges": self.presolve_pruned_edges,
            "presolve_ms": self.presolve_ms,
        }

    def describe(self) -> str:
        return (
            f"{self.edge_count} edge(s) over {self.variable_count} variable(s), "
            f"{self.scc_count} SCC(s) ({self.cyclic_scc_count} cyclic, "
            f"largest {self.largest_scc}), {self.worklist_pops} worklist pop(s), "
            f"max {self.max_passes} pass(es) per component"
        )


class PropagationGraph:
    """The propagation structure of one constraint system, built once.

    Construction normalises the constraints (exactly as the seed solver
    did), deduplicates edges by ``(lhs, target, cover)``, indexes them by
    source and by target, and condenses the variable-level graph into
    strongly connected components in topological order.  Solving and
    incremental re-solving then only *schedule* over this structure.
    """

    def __init__(
        self,
        lattice: Lattice,
        constraints: Sequence[Constraint],
        *,
        cache: Optional[NormalisationCache] = None,
    ) -> None:
        if cache is not None and cache.lattice is not lattice:
            raise ValueError(
                "normalisation cache was built for a different lattice"
            )
        self._cache = cache
        self.lattice = lattice
        self.constraints: List[Constraint] = list(constraints)
        self.edges: List[PropagationEdge] = []
        self.checks: List[Tuple[Term, Term, Constraint]] = []
        #: Every variable the system mentions, in discovery order.
        self.variables: List[LabelVar] = []
        #: var -> edge indices whose *left side* mentions it.
        self.dependents: Dict[LabelVar, List[int]] = {}
        #: var -> edge indices *targeting* it.
        self.edges_into: Dict[LabelVar, List[int]] = {}
        recorder = current_recorder()
        with recorder.span("solver.build", constraints=len(self.constraints)):
            with recorder.span("solver.normalise"):
                self._build_edges()
            #: SCCs of the variable graph, dependencies (sources) first.
            self.components: List[Tuple[LabelVar, ...]] = []
            self.component_of: Dict[LabelVar, int] = {}
            self._cyclic: List[bool] = []
            with recorder.span("solver.condense"):
                self._condense()
        self._height = _height_bound(lattice)
        if recorder.enabled:
            recorder.count("solver.graphs_built")
            recorder.count("solver.edges_built", len(self.edges))
            recorder.count("solver.sccs_built", len(self.components))

    # -- construction -------------------------------------------------------

    def _build_edges(self) -> None:
        raw: List[Tuple[Term, LabelVar, Constraint, Optional[Label]]] = []
        checks: List[Tuple[Term, Term, Constraint]] = []
        seen_vars: Set[LabelVar] = set()
        for constraint in self.constraints:
            if self._cache is not None:
                self._cache.normalise(constraint, raw, checks)
            else:
                _normalise(
                    self.lattice, constraint, constraint.lhs, constraint.rhs, raw, checks
                )
            # ``variables()`` is a frozenset; iterate it in uid order so the
            # discovery order -- and with it the Tarjan visit order, the
            # component numbering and ultimately unsat-core ordering -- is
            # identical across runs regardless of PYTHONHASHSEED.
            for var in sorted(constraint.variables(), key=lambda v: v.uid):
                if var not in seen_vars:
                    seen_vars.add(var)
                    self.variables.append(var)
        self.checks = checks
        # Deduplicate by (lhs, target, cover): repeated use sites emit the
        # same edge over and over; one edge suffices for propagation, but
        # every originating constraint is kept for unsat-core provenance.
        by_key: Dict[Tuple[Term, LabelVar, Optional[Label]], int] = {}
        origins: List[List[Constraint]] = []
        origin_sets: List[Set[Constraint]] = []
        shapes: List[Tuple[Term, LabelVar, Optional[Label]]] = []
        for lhs, target, origin, cover in raw:
            key = (lhs, target, cover)
            index = by_key.get(key)
            if index is None:
                by_key[key] = len(shapes)
                shapes.append(key)
                origins.append([origin])
                origin_sets.append({origin})
            elif origin not in origin_sets[index]:
                origin_sets[index].add(origin)
                origins[index].append(origin)
        for (lhs, target, cover), edge_origins in zip(shapes, origins):
            sources = tuple(sorted(free_vars(lhs), key=lambda v: v.uid))
            index = len(self.edges)
            self.edges.append(
                PropagationEdge(lhs, target, cover, tuple(edge_origins), sources)
            )
            self.edges_into.setdefault(target, []).append(index)
            for var in sources:
                self.dependents.setdefault(var, []).append(index)

    def _successors(self, var: LabelVar) -> List[LabelVar]:
        seen: Set[LabelVar] = set()
        result: List[LabelVar] = []
        for index in self.dependents.get(var, ()):
            target = self.edges[index].target
            if target not in seen:
                seen.add(target)
                result.append(target)
        return result

    def _condense(self) -> None:
        """Tarjan's SCC algorithm (iterative), components in topological
        order of the propagation direction: sources before sinks."""
        index_of: Dict[LabelVar, int] = {}
        lowlink: Dict[LabelVar, int] = {}
        on_stack: Set[LabelVar] = set()
        stack: List[LabelVar] = []
        emitted: List[Tuple[LabelVar, ...]] = []
        counter = 0
        for root in self.variables:
            if root in index_of:
                continue
            work: List[Tuple[LabelVar, Iterable[LabelVar]]] = [
                (root, iter(self._successors(root)))
            ]
            index_of[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index_of:
                        index_of[succ] = lowlink[succ] = counter
                        counter += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(self._successors(succ))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[succ])
                if advanced:
                    continue
                work.pop()
                if lowlink[node] == index_of[node]:
                    component: List[LabelVar] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    emitted.append(tuple(component))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        # Tarjan emits an SCC only after everything it reaches; reversing
        # the emission order puts dependencies (sources) first.
        emitted.reverse()
        self.components = emitted
        for comp_index, component in enumerate(emitted):
            for var in component:
                self.component_of[var] = comp_index
        self._cyclic = [
            len(component) > 1
            or any(
                component[0] in self.edges[i].sources
                for i in self.edges_into.get(component[0], ())
            )
            for component in self.components
        ]
        # Cached once: stats snapshots read these per solve, and scanning
        # 100k+ components each time is measurable at mega scale.
        self._cyclic_count = sum(1 for cyclic in self._cyclic if cyclic)
        self._largest = max((len(c) for c in self.components), default=0)

    # -- structure queries ---------------------------------------------------

    @property
    def cyclic_component_count(self) -> int:
        return self._cyclic_count

    @property
    def largest_component(self) -> int:
        return self._largest

    def cone_of(self, slots: Iterable[LabelVar]) -> Set[LabelVar]:
        """Forward closure of ``slots`` along the propagation edges.

        This is the cone of influence of an edit: the only variables whose
        solved value can change when those slots change.  Since members of
        an SCC reach each other, the cone is always a union of whole
        components.
        """
        pending: deque = deque(var for var in slots if var in self.component_of)
        cone: Set[LabelVar] = set(pending)
        while pending:
            var = pending.popleft()
            for index in self.dependents.get(var, ()):
                target = self.edges[index].target
                if target not in cone:
                    cone.add(target)
                    pending.append(target)
        return cone

    # -- solving -------------------------------------------------------------

    def _run_component(
        self,
        comp_index: int,
        assignment: Dict[LabelVar, Label],
        stats: SolverStats,
        lattice: Optional[Lattice] = None,
    ) -> None:
        lattice = lattice or self.lattice
        edges = self.edges
        component = self.components[comp_index]
        in_edges: List[int] = []
        for var in component:
            in_edges.extend(self.edges_into.get(var, ()))
        if not in_edges:
            return
        stats.components_solved += 1
        # Every in-edge is seeded (and so evaluated) exactly once per
        # component, and each edge belongs to exactly one component.
        stats.edges_visited += len(in_edges)
        if not self._cyclic[comp_index]:
            # Acyclic component: all sources are already converged (earlier
            # components) so one sweep over the in-edges is the fixpoint --
            # no worklist bookkeeping at all.
            for index in in_edges:
                stats.worklist_pops += 1
                edge = edges[index]
                value = evaluate(edge.lhs, lattice, assignment)
                if edge.cover is not None and lattice.leq(value, edge.cover):
                    continue
                current = assignment[edge.target]
                if not lattice.leq(value, current):
                    assignment[edge.target] = lattice.join(current, value)
            stats.max_passes = max(stats.max_passes, 1)
            return
        pending: deque = deque(in_edges)
        queued: Set[int] = set(in_edges)
        pops = 0
        # Monotone transfer functions + finite lattice => termination; the
        # budget only guards against a lattice violating the ascending
        # chain condition, and is now per component.
        budget = (len(in_edges) + 1) * (len(component) + 1) * self._height
        while pending:
            index = pending.popleft()
            queued.discard(index)
            pops += 1
            stats.worklist_pops += 1
            if pops > budget:
                raise InferenceError(
                    "constraint solving did not converge; the lattice violates "
                    "the ascending chain condition"
                )
            edge = edges[index]
            value = evaluate(edge.lhs, lattice, assignment)
            if edge.cover is not None and lattice.leq(value, edge.cover):
                continue  # the join's constant part absorbs the flow
            current = assignment[edge.target]
            if not lattice.leq(value, current):
                assignment[edge.target] = lattice.join(current, value)
                for dependent in self.dependents.get(edge.target, ()):
                    # Only edges inside this component can need re-examining
                    # now: edges into later components are seeded wholesale
                    # when their component's turn comes, and topological
                    # order guarantees no edge leads to an earlier one.
                    if (
                        self.component_of[edges[dependent].target] == comp_index
                        and dependent not in queued
                    ):
                        queued.add(dependent)
                        pending.append(dependent)
        stats.max_passes = max(
            stats.max_passes, -(-pops // len(in_edges))  # ceil division
        )

    def propagate(
        self,
        assignment: Dict[LabelVar, Label],
        stats: SolverStats,
        component_indices: Optional[Iterable[int]] = None,
    ) -> None:
        """Run the SCC-condensed schedule over ``assignment`` in place.

        With ``component_indices`` the schedule is restricted to those
        components (still in topological order); everything else is treated
        as already converged and only read.
        """
        order = (
            range(len(self.components))
            if component_indices is None
            else sorted(component_indices)
        )
        recorder = current_recorder()
        if not recorder.enabled:
            # The disabled hot path: identical to the uninstrumented
            # schedule, no per-component telemetry work at all.
            for comp_index in order:
                self._run_component(comp_index, assignment, stats)
            return
        counting = CountingLattice(self.lattice, recorder, scope="propagate")
        with recorder.span("solver.propagate", components=len(order)):
            for comp_index in order:
                component = self.components[comp_index]
                if not any(var in self.edges_into for var in component):
                    continue  # no in-edges: nothing to solve or record
                before = stats.worklist_pops
                with recorder.span(
                    "solver.component",
                    index=comp_index,
                    size=len(component),
                    cyclic=self._cyclic[comp_index],
                ) as span:
                    self._run_component(comp_index, assignment, stats, counting)
                    span.attrs["pops"] = stats.worklist_pops - before
                recorder.observe(
                    "solver.pops_per_component", stats.worklist_pops - before
                )
        counting.flush()

    def fresh_assignment(
        self, overrides: Optional[Mapping[LabelVar, Label]] = None
    ) -> Dict[LabelVar, Label]:
        """Every variable at ``⊥``, with ``overrides`` joined on as floors."""
        assignment = {var: self.lattice.bottom for var in self.variables}
        for var, label in (overrides or {}).items():
            assignment[var] = self.lattice.join(
                assignment.get(var, self.lattice.bottom), label
            )
        return assignment

    def solve(
        self,
        overrides: Optional[Mapping[LabelVar, Label]] = None,
        *,
        presolve: bool = False,
    ) -> Solution:
        """Full SCC-scheduled solve; least solution above ``overrides``.

        ``presolve=True`` runs the constant-label reduction
        (:func:`repro.analysis.presolve.presolve_graph`) first: variables
        whose least value is forced by constants alone are fixed up front
        and their components skipped by the schedule, so the Kleene
        iteration only ever sees the *live* region of the graph.  The
        assignment and conflict set are identical either way (property
        tested); only :class:`SolverStats` shows the difference.
        """
        recorder = current_recorder()
        start = time.perf_counter()
        with recorder.span(
            "solver.solve", edges=len(self.edges), variables=len(self.variables)
        ):
            stats = self._new_stats()
            assignment = self.fresh_assignment(overrides)
            skip_components: Optional[Set[int]] = None
            if presolve:
                from repro.analysis.presolve import presolve_graph

                reduction = presolve_graph(self, overrides)
                reduction.apply(assignment, stats)
                skip_components = reduction.resolved_components
            if skip_components:
                self.propagate(
                    assignment,
                    stats,
                    (
                        index
                        for index in range(len(self.components))
                        if index not in skip_components
                    ),
                )
            else:
                self.propagate(assignment, stats)
            conflicts = [c for c in self.check_conflicts(assignment) if c is not None]
        stats.solve_ms = (time.perf_counter() - start) * 1000.0
        if recorder.enabled:
            recorder.count("solver.solves")
            recorder.count("solver.edges_visited", stats.edges_visited)
            recorder.count("solver.worklist_pops", stats.worklist_pops)
            recorder.count("solver.conflicts", len(conflicts))
            if presolve:
                recorder.count(
                    "solver.presolve.vars_resolved", stats.presolve_resolved_vars
                )
                recorder.count(
                    "solver.presolve.edges_pruned", stats.presolve_pruned_edges
                )
        solution = Solution(
            self.lattice,
            assignment,
            conflicts,
            iterations=stats.worklist_pops,
            propagation_count=len(self.edges),
            check_count=len(self.checks),
        )
        solution.stats = stats
        solution.graph = self
        return solution

    def _new_stats(self) -> SolverStats:
        return SolverStats(
            variable_count=len(self.variables),
            edge_count=len(self.edges),
            check_count=len(self.checks),
            scc_count=len(self.components),
            cyclic_scc_count=self.cyclic_component_count,
            largest_scc=self.largest_component,
        )

    # -- checks and unsat cores ---------------------------------------------

    def check_conflicts(
        self,
        assignment: Dict[LabelVar, Label],
        check_indices: Optional[Iterable[int]] = None,
    ) -> List[Optional[InferenceConflict]]:
        """Evaluate checks (all, or the given indices) under ``assignment``.

        The result is aligned with :attr:`checks` when run in full; when
        restricted, it is aligned with ``check_indices`` -- the caller
        (incremental re-solve) merges it into its cached per-check slots.
        """
        indices = list(
            range(len(self.checks)) if check_indices is None else check_indices
        )
        recorder = current_recorder()
        lattice: Lattice = self.lattice
        if recorder.enabled:
            lattice = CountingLattice(self.lattice, recorder, scope="check")
        results: List[Optional[InferenceConflict]] = []
        with recorder.span("solver.check", checks=len(indices)):
            for index in indices:
                lhs, rhs, origin = self.checks[index]
                observed = evaluate(lhs, lattice, assignment)
                required = evaluate(rhs, lattice, assignment)
                if lattice.leq(observed, required):
                    results.append(None)
                else:
                    core = self.unsat_core(assignment, lhs, required)
                    results.append(
                        InferenceConflict(origin, observed, required, tuple(core))
                    )
        if recorder.enabled:
            recorder.count("solver.checks_evaluated", len(indices))
            lattice.flush()
        return results

    def unsat_core(
        self, assignment: Dict[LabelVar, Label], lhs: Term, bound: Label
    ) -> List[Constraint]:
        """Slice backwards from ``lhs`` through the edges that pushed it
        above ``bound``.

        A breadth-first walk (a :class:`~collections.deque`, so the whole
        slice is linear in the edges it touches) from the variables of the
        violated check back towards the annotated sources: a variable is
        *blamed* when its solved value does not fit under the bound, and
        every edge into a blamed variable whose own value also exceeds the
        bound contributes its originating constraints.  The resulting core
        is ordered from the conflicting check back towards the sources.
        """
        recorder = current_recorder()
        with recorder.span("solver.unsat-core"):
            return self._unsat_core(assignment, lhs, bound)

    def _unsat_core(
        self, assignment: Dict[LabelVar, Label], lhs: Term, bound: Label
    ) -> List[Constraint]:
        lattice = self.lattice
        blamed: deque = deque(
            var
            for var in sorted(free_vars(lhs), key=lambda v: v.uid)
            if not lattice.leq(assignment[var], bound)
        )
        visited: Set[LabelVar] = set(blamed)
        core: List[Constraint] = []
        in_core: Set[Constraint] = set()
        while blamed:
            var = blamed.popleft()
            for index in self.edges_into.get(var, ()):
                edge = self.edges[index]
                value = evaluate(edge.lhs, lattice, assignment)
                if edge.cover is not None and lattice.leq(value, edge.cover):
                    continue  # the edge propagated nothing (flow was covered)
                if lattice.leq(value, bound):
                    continue  # this edge alone kept the variable within bounds
                for origin in edge.constraints:
                    if origin not in in_core:
                        in_core.add(origin)
                        core.append(origin)
                for upstream in edge.sources:
                    if upstream not in visited and not lattice.leq(
                        assignment[upstream], bound
                    ):
                        visited.add(upstream)
                        blamed.append(upstream)
        return core
