"""The bit-packed, parallel solver backend (``solve(..., backend="packed")``).

The SCC-condensed scheduler in :mod:`repro.inference.graph` already visits
each edge a near-optimal number of times; what remains at 10k+ constraints
is pure interpreter overhead -- per-edge :func:`~repro.inference.terms.evaluate`
recursion, per-operation lattice method calls, membership ``require``
checks, frozenset unions.  This module removes that constant factor by
changing the *data layout*, not the algorithm:

* **Int codec** -- labels of structured lattices embed into machine
  integers so the lattice operations become single int instructions:
  ``join = |``, ``meet = &``, ``leq(a, b) = (a | b == b)``.  Powersets get
  one bit per principal, chains the rank-unary encoding ``L_i ↦ 2^i - 1``,
  products the concatenation of their component codecs, and any other
  finite lattice the generic Birkhoff embedding over its join-irreducible
  elements -- *verified exhaustively* against the object lattice at build
  time, so a lattice the encoding cannot represent faithfully (any
  non-distributive order) is rejected and the solver falls back to the
  object backend instead of computing wrong joins.

* **Flattened propagation arrays** -- the deduplicated
  :class:`~repro.inference.graph.PropagationGraph` edges compile into flat
  parallel tuples ``(target, const_bits, source_indices, cover_bits)``
  (plus one ``eval``-compiled int expression per edge whose left side
  mixes joins and meets), and variables into integer indices, so the inner
  loop touches only small ints and a flat list.

* **Batched Kleene sweeps** -- maximal runs of consecutive *acyclic*
  components in the topological component order collapse into one edge
  block swept exactly once (the SCC schedule guarantees every source is
  final when its edge is reached); cyclic components iterate locally with
  whole-block sweeps until a sweep changes nothing.

* **Parallel component scheduling** -- the condensation's weakly connected
  *clusters* (maximal groups of SCC components linked by any edge) are
  mutually independent, so they dispatch concurrently across a
  ``ProcessPoolExecutor`` in topological waves; every worker runs the same
  batched sweeps over its clusters and returns only its cluster's solved
  bits.  Results are byte-identical for any worker count because clusters
  write disjoint variable sets and merge in cluster order.

The backend is *exactly* equivalent to the object backends: the packed
fixpoint is decoded back through the codec and the checks, unsat cores,
witnesses, and pre-solve reduction all run over the same
:class:`PropagationGraph` and the same (object) assignment, so
``tests/test_packed_backend.py`` pins solutions, conflicts, cores and
leak-path witnesses bit-for-bit against ``backend="graph"`` and
:func:`~repro.inference.solve.solve_worklist`.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.inference.constraints import Constraint
from repro.inference.solve import InferenceError, Solution
from repro.inference.terms import ConstTerm, JoinTerm, LabelVar, MeetTerm, Term, VarTerm
from repro.lattice.base import Label, Lattice, LatticeError
from repro.lattice.chain import ChainLattice
from repro.lattice.finite import FiniteLattice
from repro.lattice.policy import PolicyLattice
from repro.lattice.powerset import PowersetLattice
from repro.lattice.product import ProductLattice
from repro.telemetry.recorder import current_recorder


class CodecError(LatticeError):
    """The lattice has no faithful bitset encoding (or the label is foreign)."""


# ---------------------------------------------------------------------------
# label codecs


class LabelCodec:
    """An order-embedding of a lattice into int bitsets.

    The contract every codec guarantees (and :class:`TableCodec` verifies
    exhaustively): for all labels ``a``, ``b`` of the lattice,

    * ``decode(encode(a)) == a`` (the embedding is injective and ``decode``
      is its inverse on the image),
    * ``leq(a, b)  ⇔  encode(a) | encode(b) == encode(b)``,
    * ``encode(join(a, b)) == encode(a) | encode(b)``,
    * ``encode(meet(a, b)) == encode(a) & encode(b)``,
    * ``encode(bottom) == 0``.
    """

    #: Number of bits the encoding uses.
    width: int = 0

    def __init__(self, lattice: Lattice) -> None:
        self.lattice = lattice

    def encode(self, label: Label) -> int:
        raise NotImplementedError

    def decode(self, bits: int) -> Label:
        raise NotImplementedError

    def describe(self) -> str:
        return f"{type(self).__name__}({self.lattice.name}, {self.width} bit(s))"


class PowersetCodec(LabelCodec):
    """One bit per principal; join/meet are exactly ``|`` / ``&``."""

    def __init__(self, lattice: PowersetLattice) -> None:
        super().__init__(lattice)
        self._principals: Tuple[str, ...] = tuple(lattice.principals)
        self._bit_of: Dict[str, int] = {
            principal: 1 << index for index, principal in enumerate(self._principals)
        }
        self.width = len(self._principals)

    def encode(self, label: Label) -> int:
        bits = 0
        try:
            for principal in label:  # type: ignore[union-attr]
                bits |= self._bit_of[principal]
        except (TypeError, KeyError) as exc:
            raise CodecError(
                f"label {label!r} is not a subset of {self.lattice.name!r}"
            ) from exc
        return bits

    def decode(self, bits: int) -> Label:
        if bits >> self.width:
            raise CodecError(f"bit pattern {bits:#x} exceeds {self.width} principals")
        return frozenset(
            principal
            for index, principal in enumerate(self._principals)
            if bits >> index & 1
        )


class ChainCodec(LabelCodec):
    """Rank-unary encoding: level ``i`` becomes the ``i`` lowest bits set.

    The images are nested (``2^i - 1 ⊆ 2^j - 1`` iff ``i <= j``), so the
    total order, max-join and min-meet all coincide with the bitset
    operations.
    """

    def __init__(self, lattice: ChainLattice) -> None:
        super().__init__(lattice)
        self._levels: Tuple[str, ...] = tuple(lattice.levels)
        self._rank_of: Dict[Label, int] = {
            level: index for index, level in enumerate(self._levels)
        }
        self.width = len(self._levels) - 1

    def encode(self, label: Label) -> int:
        rank = self._rank_of.get(label)
        if rank is None:
            raise CodecError(f"label {label!r} is not a level of {self.lattice.name!r}")
        return (1 << rank) - 1

    def decode(self, bits: int) -> Label:
        rank = bits.bit_length()
        if bits != (1 << rank) - 1 or rank >= len(self._levels):
            raise CodecError(f"bit pattern {bits:#x} is not a rank of {self.lattice.name!r}")
        return self._levels[rank]


class ProductCodec(LabelCodec):
    """Component codecs concatenated: the left component in the high bits."""

    def __init__(self, lattice: ProductLattice, left: LabelCodec, right: LabelCodec) -> None:
        super().__init__(lattice)
        self._left = left
        self._right = right
        self.width = left.width + right.width

    def encode(self, label: Label) -> int:
        if not isinstance(label, tuple) or len(label) != 2:
            raise CodecError(f"label {label!r} is not a pair of {self.lattice.name!r}")
        return self._left.encode(label[0]) << self._right.width | self._right.encode(
            label[1]
        )

    def decode(self, bits: int) -> Label:
        mask = (1 << self._right.width) - 1
        return (self._left.decode(bits >> self._right.width), self._right.decode(bits & mask))


class PolicyCodec(LabelCodec):
    """Policy labels packed as purpose bits | recipient bits | retention rank.

    Purposes take the lowest bits (declaration order), recipients the next
    block, and the retention chain the highest block in the rank-unary
    spelling (class ``i`` becomes the ``i`` lowest bits of the block).  All
    three components are distributive, so the concatenation satisfies the
    full codec contract by construction — no carrier enumeration, which is
    the point: a 216-principal policy lattice encodes into one 223-bit int.
    """

    def __init__(self, lattice: "PolicyLattice") -> None:
        super().__init__(lattice)
        self._purpose_bit: Dict[str, int] = {
            name: 1 << index for index, name in enumerate(lattice.purposes)
        }
        offset = len(lattice.purposes)
        self._recipient_bit: Dict[str, int] = {
            name: 1 << (offset + index)
            for index, name in enumerate(lattice.recipients)
        }
        self._retention_shift = offset + len(lattice.recipients)
        self._levels: Tuple[str, ...] = tuple(lattice.retention_classes)
        self.width = self._retention_shift + len(self._levels) - 1

    def encode(self, label: Label) -> int:
        try:
            bits = 0
            for purpose in label.purposes:  # type: ignore[union-attr]
                bits |= self._purpose_bit[purpose]
            for recipient in label.recipients:  # type: ignore[union-attr]
                bits |= self._recipient_bit[recipient]
            rank = self._levels.index(label.retention)  # type: ignore[union-attr]
        except (AttributeError, TypeError, KeyError, ValueError) as exc:
            raise CodecError(
                f"label {label!r} is not a member of {self.lattice.name!r}"
            ) from exc
        return bits | ((1 << rank) - 1) << self._retention_shift

    def decode(self, bits: int) -> Label:
        if bits >> self.width:
            raise CodecError(
                f"bit pattern {bits:#x} exceeds {self.width} bits of "
                f"{self.lattice.name!r}"
            )
        retention_bits = bits >> self._retention_shift
        rank = retention_bits.bit_length()
        if retention_bits != (1 << rank) - 1:
            raise CodecError(
                f"bit pattern {bits:#x} has a non-rank retention block for "
                f"{self.lattice.name!r}"
            )
        from repro.lattice.policy import PolicyLabel

        return PolicyLabel(
            frozenset(
                name for name, bit in self._purpose_bit.items() if bits & bit
            ),
            frozenset(
                name for name, bit in self._recipient_bit.items() if bits & bit
            ),
            self._levels[rank],
        )


class TableCodec(LabelCodec):
    """The Birkhoff embedding for any (small) finite lattice.

    Every label maps to the set of join-irreducible elements below it.
    The map is an order embedding for *any* finite lattice and turns
    meets into intersections; joins become unions exactly when the
    lattice is distributive -- which is why construction verifies the
    full contract over the carrier and raises :class:`CodecError` for
    anything it cannot represent faithfully (e.g. the M3 diamond), so
    the caller falls back to the object backend instead of mis-solving.
    """

    #: Refuse to enumerate carriers larger than this (a structured codec
    #: should exist for them instead).
    MAX_CARRIER = 1024

    def __init__(self, lattice: Lattice) -> None:
        super().__init__(lattice)
        members: List[Label] = []
        for label in lattice.labels():
            members.append(label)
            if len(members) > self.MAX_CARRIER:
                raise CodecError(
                    f"lattice {lattice.name!r} has more than {self.MAX_CARRIER} "
                    f"labels; no generic bitset encoding is attempted"
                )
        # A label is join-irreducible when it is not the join of the labels
        # strictly below it (bottom, the empty join, never is).
        irreducibles = [
            label
            for label in members
            if not lattice.equal(
                label,
                lattice.join_all(m for m in members if lattice.lt(m, label)),
            )
        ]
        self.width = len(irreducibles)
        self._encode_table: Dict[Label, int] = {}
        self._decode_table: Dict[int, Label] = {}
        for label in members:
            bits = 0
            for index, irreducible in enumerate(irreducibles):
                if lattice.leq(irreducible, label):
                    bits |= 1 << index
            if bits in self._decode_table:
                raise CodecError(
                    f"lattice {lattice.name!r}: labels {self._decode_table[bits]!r} "
                    f"and {label!r} encode identically; not embeddable"
                )
            self._encode_table[label] = bits
            self._decode_table[bits] = label
        self._verify(members)

    def _verify(self, members: Sequence[Label]) -> None:
        lattice = self.lattice
        encode = self._encode_table
        if encode[lattice.bottom] != 0:
            raise CodecError(f"lattice {lattice.name!r}: bottom does not encode to 0")
        for a in members:
            ea = encode[a]
            for b in members:
                eb = encode[b]
                if lattice.leq(a, b) != (ea | eb == eb):
                    raise CodecError(
                        f"lattice {lattice.name!r}: order of {a!r} ⊑ {b!r} "
                        f"disagrees with the subset test; not embeddable"
                    )
                if encode[lattice.join(a, b)] != ea | eb:
                    raise CodecError(
                        f"lattice {lattice.name!r}: join({a!r}, {b!r}) is not "
                        f"bitwise-or (the lattice is not distributive)"
                    )
                if encode[lattice.meet(a, b)] != ea & eb:
                    raise CodecError(
                        f"lattice {lattice.name!r}: meet({a!r}, {b!r}) is not "
                        f"bitwise-and (the lattice is not distributive)"
                    )

    def encode(self, label: Label) -> int:
        bits = self._encode_table.get(label)
        if bits is None:
            raise CodecError(f"label {label!r} is not a member of {self.lattice.name!r}")
        return bits

    def decode(self, bits: int) -> Label:
        label = self._decode_table.get(bits)
        if label is None:
            raise CodecError(
                f"bit pattern {bits:#x} encodes no label of {self.lattice.name!r}"
            )
        return label


def _build_codec(lattice: Lattice) -> LabelCodec:
    if isinstance(lattice, PolicyLattice):
        return PolicyCodec(lattice)
    if isinstance(lattice, PowersetLattice):
        return PowersetCodec(lattice)
    if isinstance(lattice, ChainLattice):
        return ChainCodec(lattice)
    if isinstance(lattice, ProductLattice):
        return ProductCodec(lattice, _build_codec(lattice.left), _build_codec(lattice.right))
    if isinstance(lattice, FiniteLattice):
        return TableCodec(lattice)
    raise CodecError(
        f"lattice {lattice.name!r} ({type(lattice).__name__}) has no int encoding"
    )


def codec_for(lattice: Lattice) -> Optional[LabelCodec]:
    """A verified int codec for ``lattice``, or ``None`` when unencodable.

    ``None`` is the fallback signal: :func:`solve_packed` then delegates to
    the object-lattice graph backend (and records why in
    :attr:`~repro.inference.graph.SolverStats.fallback_reason`).
    """
    try:
        return _build_codec(lattice)
    except CodecError:
        return None


# ---------------------------------------------------------------------------
# edge compilation


def _term_spec(
    term: Term, codec: LabelCodec, var_index: Mapping[LabelVar, int]
) -> Tuple[int, Optional[Tuple[int, ...]], Optional[str]]:
    """Compile one left-hand term to ``(const_bits, sources, expr)``.

    Join-shaped terms (the overwhelming majority) become the *fast* form:
    constant bits plus a tuple of source variable indices, OR-ed inline by
    the sweep loop.  Anything containing a meet compiles to a Python int
    expression over ``V`` (the values list), evaluated as one call per
    edge -- still orders of magnitude cheaper than the recursive object
    evaluator.
    """
    if isinstance(term, ConstTerm):
        return codec.encode(term.label), (), None
    if isinstance(term, VarTerm):
        return 0, (var_index[term.var],), None
    if isinstance(term, JoinTerm) and all(
        isinstance(part, (ConstTerm, VarTerm)) for part in term.parts
    ):
        const = 0
        sources: List[int] = []
        for part in term.parts:
            if isinstance(part, ConstTerm):
                const |= codec.encode(part.label)
            else:
                sources.append(var_index[part.var])
        return const, tuple(sources), None
    return 0, None, _term_expr(term, codec, var_index)


def _term_expr(term: Term, codec: LabelCodec, var_index: Mapping[LabelVar, int]) -> str:
    if isinstance(term, ConstTerm):
        return str(codec.encode(term.label))
    if isinstance(term, VarTerm):
        return f"V[{var_index[term.var]}]"
    if isinstance(term, JoinTerm):
        return "(" + " | ".join(_term_expr(p, codec, var_index) for p in term.parts) + ")"
    if isinstance(term, MeetTerm):
        return "(" + " & ".join(_term_expr(p, codec, var_index) for p in term.parts) + ")"
    raise CodecError(f"cannot compile {type(term).__name__} to an int expression")


def _compile_expr(expr: str) -> Callable[[Any], int]:
    return eval("lambda V: " + expr, {"__builtins__": {}})  # noqa: S307


#: One compiled edge: (target index, constant bits, source index tuple or
#: None, cover bits or None, compiled expression or None).  ``sources`` is
#: None exactly when ``fn`` is set.
_CompiledEdge = Tuple[int, int, Optional[Tuple[int, ...]], Optional[int], Optional[Callable]]


def _compile_edges(
    specs: Sequence[Tuple[int, int, Optional[Tuple[int, ...]], Optional[int], Optional[str]]],
) -> List[_CompiledEdge]:
    return [
        (target, const, sources, cover, None if expr is None else _compile_expr(expr))
        for target, const, sources, cover, expr in specs
    ]


def _sweep(block: Sequence[_CompiledEdge], values: Any) -> bool:
    """One batched pass over an edge block; True when anything rose."""
    changed = False
    for target, const, sources, cover, fn in block:
        if fn is None:
            value = const
            for source in sources:  # type: ignore[union-attr]
                value |= values[source]
        else:
            value = fn(values)
        if cover is not None and value | cover == cover:
            continue  # the join's constant part absorbs the flow
        current = values[target]
        merged = current | value
        if merged != current:
            values[target] = merged
            changed = True
    return changed


def _run_plan(
    plan: Sequence[Tuple[str, Any]], values: Any, height: int
) -> Tuple[int, int, int, int]:
    """Run compiled blocks over ``values``; (pops, sweeps, max_passes, comps).

    ``("sweep", block)`` entries are single batched passes over a run of
    consecutive acyclic components; ``("iterate", block, size)`` entries
    are one cyclic component swept to a local fixpoint.  The iteration
    budget mirrors the object scheduler's ascending-chain guard.
    """
    pops = 0
    sweeps = 0
    max_passes = 0
    components = 0
    for kind, block, size in plan:
        components += size if kind == "sweep" else 1
        if kind == "sweep":
            _sweep(block, values)
            pops += len(block)
            sweeps += 1
            max_passes = max(max_passes, 1)
            continue
        passes = 0
        budget = (size + 1) * height + 2
        while True:
            passes += 1
            if passes > budget:
                raise InferenceError(
                    "constraint solving did not converge; the lattice violates "
                    "the ascending chain condition"
                )
            pops += len(block)
            sweeps += 1
            if not _sweep(block, values):
                break
        max_passes = max(max_passes, passes)
    return pops, sweeps, max_passes, components


# ---------------------------------------------------------------------------
# the packed system


class PackedSystem:
    """A :class:`PropagationGraph` flattened into int arrays, built once.

    Holds the codec, the per-edge compiled specs, the per-component edge
    blocks, the topological *wave* of every component (the earliest round
    in which all of its dependencies are final) and the weakly connected
    *clusters* of the condensation -- the units the parallel scheduler
    dispatches.  Instances cache on the graph (one encode per graph), so
    repeated solves pay only the sweeps.
    """

    def __init__(self, graph, codec: LabelCodec) -> None:
        start = time.perf_counter()
        self.graph = graph
        self.codec = codec
        self.var_index: Dict[LabelVar, int] = {
            var: index for index, var in enumerate(graph.variables)
        }
        #: Picklable per-edge specs (expressions kept as source strings so
        #: worker processes can compile them locally).
        self.edge_specs: List[
            Tuple[int, int, Optional[Tuple[int, ...]], Optional[int], Optional[str]]
        ] = []
        for edge in graph.edges:
            const, sources, expr = _term_spec(edge.lhs, codec, self.var_index)
            cover = None if edge.cover is None else codec.encode(edge.cover)
            self.edge_specs.append(
                (self.var_index[edge.target], const, sources, cover, expr)
            )
        #: In-edge indices of every component, in component order.
        self.comp_edges: List[List[int]] = []
        for component in graph.components:
            in_edges: List[int] = []
            for var in component:
                in_edges.extend(graph.edges_into.get(var, ()))
            self.comp_edges.append(in_edges)
        self.comp_vars: List[Tuple[int, ...]] = [
            tuple(self.var_index[var] for var in component)
            for component in graph.components
        ]
        self.cyclic: List[bool] = list(graph._cyclic)
        self.height: int = graph._height
        self.wave_of: List[int] = self._waves()
        self.cluster_members: List[List[int]] = self._clusters()
        self._wave_count: Optional[int] = None
        self._max_wave_width: Optional[int] = None
        self._compiled: Optional[List[_CompiledEdge]] = None
        self._default_plan: Optional[List[Tuple[str, Any, int]]] = None
        self.encode_ms = (time.perf_counter() - start) * 1000.0

    # -- structure ----------------------------------------------------------

    def _waves(self) -> List[int]:
        """Topological wave of each component: 0 for components with no
        cross-component in-edges, else 1 + the latest feeding wave."""
        graph = self.graph
        waves: List[int] = []
        for comp_index, in_edges in enumerate(self.comp_edges):
            wave = 0
            for edge_index in in_edges:
                for source in graph.edges[edge_index].sources:
                    source_comp = graph.component_of[source]
                    if source_comp != comp_index:
                        wave = max(wave, waves[source_comp] + 1)
            waves.append(wave)
        return waves

    def _clusters(self) -> List[List[int]]:
        """Weakly connected clusters of the condensation, via union-find.

        Two components belong to one cluster when any propagation edge
        links them (in either direction); distinct clusters share no
        variables, so they solve independently -- the parallel dispatch
        unit.  Members are kept in (topological) component order.
        """
        graph = self.graph
        parent = list(range(len(self.comp_edges)))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for comp_index, in_edges in enumerate(self.comp_edges):
            for edge_index in in_edges:
                for source in graph.edges[edge_index].sources:
                    a, b = find(graph.component_of[source]), find(comp_index)
                    if a != b:
                        parent[max(a, b)] = min(a, b)
        members: Dict[int, List[int]] = defaultdict(list)
        for comp_index in range(len(self.comp_edges)):
            members[find(comp_index)].append(comp_index)
        return [members[root] for root in sorted(members)]

    @property
    def wave_count(self) -> int:
        if self._wave_count is None:
            self._wave_count = max(self.wave_of, default=-1) + 1
        return self._wave_count

    @property
    def max_wave_width(self) -> int:
        if self._max_wave_width is None:
            widths: Dict[int, int] = defaultdict(int)
            for wave in self.wave_of:
                widths[wave] += 1
            self._max_wave_width = max(widths.values(), default=0)
        return self._max_wave_width

    def decode_assignment(self, values: Sequence[int]) -> Dict[LabelVar, Label]:
        """``values`` (bit array in variable order) as an object assignment.

        Distinct bit patterns in a fixpoint are at most the carrier size,
        so decoding memoises per pattern and the 100k-variable dict is
        assembled by C-level ``zip``/``map`` instead of a Python loop.
        """
        decode = self.codec.decode
        table = {bits: decode(bits) for bits in set(values)}
        return dict(zip(self.graph.variables, map(table.__getitem__, values)))

    # -- compilation --------------------------------------------------------

    def compiled(self) -> List[_CompiledEdge]:
        if self._compiled is None:
            self._compiled = _compile_edges(self.edge_specs)
        return self._compiled

    def plan(
        self, skip: Optional[Set[int]] = None, component_indices: Optional[Iterable[int]] = None
    ) -> List[Tuple[str, Any, int]]:
        """Compiled blocks in schedule order, merging acyclic runs.

        Consecutive acyclic components collapse into one ``("sweep", ...)``
        block: in topological order each of their edges reads only final
        values, so a single batched pass over the concatenation is exactly
        the per-component schedule (this is what removes the per-component
        interpreter overhead at 1M singleton components).  ``skip`` drops
        pre-solved components; ``component_indices`` restricts (and sorts)
        the schedule like :meth:`PropagationGraph.propagate`.
        """
        if skip is None and component_indices is None and self._default_plan is not None:
            return self._default_plan
        order = (
            range(len(self.comp_edges))
            if component_indices is None
            else sorted(component_indices)
        )
        compiled = self.compiled()
        plan: List[Tuple[str, Any, int]] = []
        run: List[_CompiledEdge] = []
        run_size = 0
        for comp_index in order:
            if skip is not None and comp_index in skip:
                continue
            block = [compiled[i] for i in self.comp_edges[comp_index]]
            if self.cyclic[comp_index]:
                if run:
                    plan.append(("sweep", run, run_size))
                    run, run_size = [], 0
                plan.append(("iterate", block, len(self.comp_vars[comp_index])))
            elif block:
                run.extend(block)
                run_size += 1
        if run:
            plan.append(("sweep", run, run_size))
        if skip is None and component_indices is None:
            self._default_plan = plan
        return plan

    def worker_payload(self) -> Dict[str, Any]:
        """Everything a worker process needs, picklable."""
        return {
            "edge_specs": self.edge_specs,
            "comp_edges": self.comp_edges,
            "comp_vars": self.comp_vars,
            "cyclic": self.cyclic,
            "height": self.height,
        }


def packed_system_for(graph, codec: Optional[LabelCodec] = None) -> "PackedSystem":
    """The (cached) packed form of ``graph``; one encode per graph."""
    cached = getattr(graph, "_packed_system", None)
    if cached is not None and (codec is None or cached.codec is codec):
        return cached
    resolved = codec or _build_codec(graph.lattice)
    system = PackedSystem(graph, resolved)
    graph._packed_system = system
    return system


# ---------------------------------------------------------------------------
# worker-side solving (module level so ProcessPoolExecutor can pickle it)

_WORKER_STATE: Optional[Dict[str, Any]] = None


def _worker_init(payload: Dict[str, Any]) -> None:
    global _WORKER_STATE
    payload = dict(payload)
    payload["compiled"] = _compile_edges(payload["edge_specs"])
    _WORKER_STATE = payload


def _worker_plan(state: Dict[str, Any], comp_ids: Sequence[int]) -> List[Tuple[str, Any, int]]:
    compiled = state["compiled"]
    plan: List[Tuple[str, Any, int]] = []
    run: List[_CompiledEdge] = []
    run_size = 0
    for comp_index in comp_ids:
        block = [compiled[i] for i in state["comp_edges"][comp_index]]
        if state["cyclic"][comp_index]:
            if run:
                plan.append(("sweep", run, run_size))
                run, run_size = [], 0
            plan.append(("iterate", block, len(state["comp_vars"][comp_index])))
        elif block:
            run.extend(block)
            run_size += 1
    if run:
        plan.append(("sweep", run, run_size))
    return plan


def _worker_solve(
    task: Tuple[Sequence[int], Sequence[Tuple[int, int]]],
) -> Tuple[List[Tuple[int, int]], Tuple[int, int, int, int]]:
    """Solve one batch of clusters: (comp ids, floor bits) -> solved bits.

    Clusters are weakly connected closures, so every variable an edge in
    the batch reads lives inside the batch; values start at the floors
    (pins and pre-solved components) and ``defaultdict(int)`` supplies the
    ``⊥ = 0`` default, letting compiled expressions index it like a list.
    """
    assert _WORKER_STATE is not None, "worker used before initialisation"
    state = _WORKER_STATE
    comp_ids, floors = task
    values: Any = defaultdict(int, floors)
    counters = _run_plan(_worker_plan(state, comp_ids), values, state["height"])
    results: List[Tuple[int, int]] = []
    for comp_index in comp_ids:
        for var_index in state["comp_vars"][comp_index]:
            results.append((var_index, values[var_index]))
    return results, counters


# ---------------------------------------------------------------------------
# the backend entry point


def _fallback(graph, overrides, presolve: bool, reason: str) -> Solution:
    solution = graph.solve(overrides, presolve=presolve)
    if solution.stats is not None:
        solution.stats.backend = "graph"
        solution.stats.fallback_reason = reason
    recorder = current_recorder()
    if recorder.enabled:
        recorder.count("solver.packed.fallbacks")
    return solution


def _parallel_tasks(
    system: PackedSystem,
    values: Sequence[int],
    skip: Optional[Set[int]],
    workers: int,
) -> List[Tuple[List[int], List[Tuple[int, int]]]]:
    """Round-robin the clusters into ``workers`` batches of (comps, floors).

    Batching keeps IPC at one task per worker rather than one per cluster;
    determinism is unaffected because clusters are disjoint and the merge
    only writes each variable once.  Floors carry every non-bottom value of
    the batch's clusters -- override pins *and* pre-solved (skipped)
    components, whose values downstream edges in the same cluster read.
    """
    batches: List[List[List[int]]] = [[] for _ in range(workers)]
    for index, members in enumerate(system.cluster_members):
        batches[index % workers].append(members)
    tasks: List[Tuple[List[int], List[Tuple[int, int]]]] = []
    for clusters in batches:
        comp_ids: List[int] = []
        floors: List[Tuple[int, int]] = []
        for members in clusters:
            for comp_index in members:
                if not (skip and comp_index in skip):
                    comp_ids.append(comp_index)
                for var_index in system.comp_vars[comp_index]:
                    if values[var_index]:
                        floors.append((var_index, values[var_index]))
        if comp_ids:
            tasks.append((comp_ids, floors))
    return tasks


def solve_packed(
    lattice: Lattice,
    constraints: Optional[Sequence[Constraint]] = None,
    *,
    presolve: bool = False,
    workers: int = 1,
    graph=None,
    overrides: Optional[Mapping[LabelVar, Label]] = None,
) -> Solution:
    """Least solution via the bit-packed backend; exact graph-backend parity.

    Builds (or reuses) the :class:`PropagationGraph`, encodes it into a
    cached :class:`PackedSystem`, runs the batched Kleene sweeps -- serial,
    or with independent clusters dispatched over ``workers`` processes --
    decodes the fixpoint, and evaluates checks/cores over the *object*
    graph so conflicts, unsat cores and witnesses are identical to
    ``backend="graph"`` by construction.  Falls back to the object backend
    (recording :attr:`SolverStats.fallback_reason`) when the lattice has no
    faithful int encoding.
    """
    from repro.inference.graph import PropagationGraph

    if graph is None:
        graph = PropagationGraph(lattice, list(constraints or ()))
    recorder = current_recorder()
    start = time.perf_counter()
    with recorder.span(
        "solver.solve",
        edges=len(graph.edges),
        variables=len(graph.variables),
        backend="packed",
    ):
        stats = graph._new_stats()
        stats.backend = "packed"
        stats.workers = max(1, workers)
        try:
            with recorder.span("solver.encode"):
                system = packed_system_for(graph)
        except CodecError as exc:
            return _fallback(graph, overrides, presolve, str(exc))
        codec = system.codec
        stats.encode_ms = system.encode_ms
        stats.waves = system.wave_count
        stats.max_wave_width = system.max_wave_width
        stats.clusters = len(system.cluster_members)

        values: List[int] = [0] * len(graph.variables)
        for var, label in (overrides or {}).items():
            index = system.var_index.get(var)
            if index is not None:
                values[index] |= codec.encode(label)
        skip: Optional[Set[int]] = None
        if presolve:
            from repro.analysis.presolve import presolve_graph

            reduction = presolve_graph(graph, overrides)
            for var, label in reduction.values.items():
                values[system.var_index[var]] = codec.encode(label)
            skip = reduction.resolved_components
            stats.presolve_resolved_vars = reduction.resolved_count
            stats.presolve_pruned_edges = reduction.pruned_edges
            stats.presolve_ms = reduction.elapsed_ms

        use_workers = stats.workers > 1 and len(system.cluster_members) > 1
        with recorder.span(
            "solver.packed",
            clusters=len(system.cluster_members),
            waves=system.wave_count,
            workers=stats.workers if use_workers else 1,
        ):
            if use_workers:
                _solve_parallel(system, values, skip, stats)
            else:
                pops, sweeps, max_passes, comps = _run_plan(
                    system.plan(skip), values, system.height
                )
                stats.worklist_pops += pops
                stats.sweeps += sweeps
                stats.max_passes = max(stats.max_passes, max_passes)
                stats.components_solved += comps
        if skip:
            stats.edges_visited = len(system.edge_specs) - sum(
                len(system.comp_edges[i]) for i in skip
            )
        else:
            stats.edges_visited = len(system.edge_specs)

        with recorder.span("solver.decode"):
            assignment = system.decode_assignment(values)
        conflicts = [c for c in graph.check_conflicts(assignment) if c is not None]
    stats.solve_ms = (time.perf_counter() - start) * 1000.0
    if recorder.enabled:
        recorder.count("solver.solves")
        recorder.count("solver.packed.solves")
        recorder.count("solver.packed.sweeps", stats.sweeps)
        recorder.count("solver.edges_visited", stats.edges_visited)
        recorder.count("solver.worklist_pops", stats.worklist_pops)
        recorder.count("solver.conflicts", len(conflicts))
    solution = Solution(
        lattice,
        assignment,
        conflicts,
        iterations=stats.worklist_pops,
        propagation_count=len(graph.edges),
        check_count=len(graph.checks),
    )
    solution.stats = stats
    solution.graph = graph
    return solution


def _solve_parallel(
    system: PackedSystem, values: List[int], skip: Optional[Set[int]], stats
) -> None:
    """Dispatch independent cluster batches across a process pool.

    Floors (override pins and pre-solved values) ship with each batch;
    workers return their batch's solved bits, merged in completion-safe
    batch order.  Any pool failure (fork unavailable, pickling trouble)
    degrades to the serial plan -- same results, one process.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    tasks = _parallel_tasks(system, values, skip, stats.workers)
    if not tasks:
        return
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-posix platforms
        context = multiprocessing.get_context()
    try:
        with ProcessPoolExecutor(
            max_workers=min(stats.workers, len(tasks)),
            mp_context=context,
            initializer=_worker_init,
            initargs=(system.worker_payload(),),
        ) as pool:
            outcomes = list(pool.map(_worker_solve, tasks))
    except (OSError, ValueError) as exc:  # pragma: no cover - pool unavailable
        current_recorder().count("solver.packed.pool_failures")
        stats.fallback_reason = f"process pool unavailable ({exc}); solved serially"
        pops, sweeps, max_passes, comps = _run_plan(
            system.plan(skip), values, system.height
        )
        stats.worklist_pops += pops
        stats.sweeps += sweeps
        stats.max_passes = max(stats.max_passes, max_passes)
        stats.components_solved += comps
        return
    for results, (pops, sweeps, max_passes, comps) in outcomes:
        for var_index, bits in results:
            values[var_index] = bits
        stats.worklist_pops += pops
        stats.sweeps += sweeps
        stats.max_passes = max(stats.max_passes, max_passes)
        stats.components_solved += comps
