"""The constraint IR: ``lhs ⊑ rhs`` over label terms, with provenance.

Each :class:`Constraint` records which Figure 5–7 side condition produced
it (``rule``), how a violation of it should be classified (``kind``), the
source span of the construct that imposed it, and a human readable
``reason`` phrased like the checker's diagnostics.  The solver reports
conflicts by pointing back at these, so an unsatisfiable inference problem
reads exactly like an IFC violation report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, List

from repro.ifc.errors import ViolationKind
from repro.inference.terms import LabelVar, Term, free_vars
from repro.syntax.source import SourceSpan


@dataclass(frozen=True)
class Constraint:
    """One flow constraint ``lhs ⊑ rhs`` with its provenance."""

    lhs: Term
    rhs: Term
    span: SourceSpan = field(default_factory=SourceSpan.unknown)
    rule: str = ""
    kind: ViolationKind = ViolationKind.EXPLICIT_FLOW
    reason: str = ""

    def describe(self) -> str:
        return f"{self.lhs.describe()} ⊑ {self.rhs.describe()}"

    def variables(self) -> FrozenSet[LabelVar]:
        return free_vars(self.lhs) | free_vars(self.rhs)

    def __str__(self) -> str:
        rule = f" [{self.rule}]" if self.rule else ""
        return f"{self.span}: {self.describe()}{rule}"


class ConstraintSet:
    """An ordered, duplicate-free accumulator of constraints."""

    def __init__(self) -> None:
        self._constraints: List[Constraint] = []
        self._seen: set = set()

    def add(self, constraint: Constraint) -> None:
        # Trivial constraints (identical sides) carry no information.
        if constraint.lhs == constraint.rhs:
            return
        key = (constraint.lhs, constraint.rhs, constraint.span, constraint.rule)
        if key in self._seen:
            return
        self._seen.add(key)
        self._constraints.append(constraint)

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def as_list(self) -> List[Constraint]:
        return list(self._constraints)
