"""The inference pipeline: generate → solve → elaborate.

:func:`infer_labels` is the public entry point.  It produces an
:class:`InferenceResult` carrying the solved per-slot assignment (for
reporting), the conflicts mapped back to source spans as
:class:`~repro.ifc.errors.IfcDiagnostic` values, and -- when the system is
satisfiable -- a fully annotated program ready for independent
re-verification by the stock checker.

:class:`Solver` is the persistent counterpart for interactive use (an
IDE/LSP-style annotation assistant): it builds the propagation graph once
and, after an annotation edit, :meth:`Solver.resolve` recomputes only the
edit's cone of influence instead of restarting from scratch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence

from repro.ifc.errors import IfcDiagnostic
from repro.inference.constraints import Constraint
from repro.inference.elaborate import elaborate_program
from repro.inference.generate import GenerationResult, generate_constraints
from repro.inference.graph import NormalisationCache, PropagationGraph
from repro.inference.solve import InferenceConflict, Solution, solve
from repro.inference.terms import (
    ConstTerm,
    JoinTerm,
    LabelVar,
    MeetTerm,
    Term,
    VarTerm,
    evaluate,
    free_vars,
    join_terms,
    meet_terms,
)
from repro.lattice.base import Label, Lattice
from repro.lattice.two_point import TwoPointLattice
from repro.syntax.program import Program
from repro.syntax.source import SourceSpan
from repro.telemetry.recorder import current_recorder


@dataclass(frozen=True)
class InferredLabel:
    """One solved annotation slot, for reports and the CLI."""

    hint: str
    span: SourceSpan
    label: Label

    def describe(self, lattice: Lattice) -> str:
        location = "" if self.span.is_unknown() else f" ({self.span})"
        return f"{self.hint}: {lattice.format_label(self.label)}{location}"


@dataclass
class InferenceResult:
    """Outcome of constraint-based label inference over one program."""

    program: Program
    lattice: Lattice
    generation: GenerationResult
    solution: Solution
    #: Solved labels, one per annotation slot that received a variable,
    #: in slot-discovery order.
    inferred: List[InferredLabel] = field(default_factory=list)
    #: Label errors from generation plus conflicts from solving.
    diagnostics: List[IfcDiagnostic] = field(default_factory=list)
    #: The fully annotated program (best effort when there are conflicts).
    elaborated: Optional[Program] = None

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    @property
    def constraint_count(self) -> int:
        return len(self.generation.constraints)

    @property
    def variable_count(self) -> int:
        return len(self.inferred) + len(self.generation.control_pc_vars)

    def assignment_by_hint(self) -> Dict[str, Label]:
        """The solved assignment keyed by slot description (for tests/JSON)."""
        return {site.hint: site.label for site in self.inferred}


def _maximise_control_pcs(
    lattice: Lattice,
    generation: GenerationResult,
    solution: Solution,
    *,
    backend: str = "graph",
    workers: int = 1,
) -> Solution:
    """Re-solve with each ``@pc(infer)`` variable pushed as high as it goes.

    A control's pc only ever appears on constraint *left* sides (it lower
    bounds the writes the body performs), so the least solution would
    trivially report ⊥ for every program.  The informative answer is the
    *greatest* admissible pc -- admissible against the least labels of
    everything else: every non-pc slot is frozen at its least-solution
    value, so a raised pc never drags unconstrained slots upward (that
    would break ``infer_labels``' least-label contract).  With the slots
    frozen the answer is direct: a pc variable occurs only on constraint
    left sides, so its greatest admissible value is the meet of the
    right-hand sides of the constraints that mention it, evaluated under
    the least solution (⊤ when unconstrained).  One re-solve with the pc
    variables pinned there produces the reported solution; it cannot
    conflict by construction, but if it somehow does the least solution is
    returned unchanged.
    """
    candidates = {}
    # ``control_pc_vars`` pairs are walked through a set; sort by uid so the
    # pin-constraint order (and everything downstream of it) is stable
    # across runs regardless of PYTHONHASHSEED.
    pc_vars = sorted(
        {var for _control, var in generation.control_pc_vars}, key=lambda v: v.uid
    )
    for var in pc_vars:
        bounds = [
            evaluate(constraint.rhs, lattice, solution.assignment)
            for constraint in generation.constraints
            if var in free_vars(constraint.lhs)
        ]
        candidates[var] = lattice.meet_all(bounds)
    if all(lattice.equal(label, lattice.bottom) for label in candidates.values()):
        return solution
    freezes = [
        Constraint(
            VarTerm(site.var),
            ConstTerm(solution.value_of(site.var)),
            site.span,
            rule="@pc",
            reason=f"{site.hint} is frozen at its least label",
        )
        for site in generation.sites
    ]
    pins = [
        Constraint(
            ConstTerm(label),
            VarTerm(var),
            var.span,
            rule="@pc",
            reason=f"greatest admissible {var.hint}",
        )
        for var, label in candidates.items()
    ]
    boosted = solve(
        lattice,
        generation.constraints + freezes + pins,
        backend=backend,
        workers=workers,
    )
    if not boosted.ok:
        return solution
    # Report the *user's* constraint system, not the internal augmented one
    # (whose freeze/pin constraints would inflate edge and check counts):
    # keep the primary solve's counters and structural stats, accumulating
    # the time this second solve took so solve_ms stays the total solver
    # share of infer.
    boosted.propagation_count = solution.propagation_count
    boosted.check_count = solution.check_count
    boosted.iterations = solution.iterations
    if solution.stats is not None and boosted.stats is not None:
        solution.stats.solve_ms += boosted.stats.solve_ms
        boosted.stats = solution.stats
    return boosted


class Solver:
    """A persistent solver over one constraint system.

    Construction builds the :class:`~repro.inference.graph.PropagationGraph`
    once (normalisation, edge deduplication, SCC condensation).
    :meth:`solve` produces the least solution; after an edit,
    :meth:`resolve` recomputes *only the cone of influence* of the edited
    label slots -- everything the edit cannot reach keeps its converged
    value and its cached check verdicts.  This is the reasoning core an
    IDE-style annotation assistant needs: per-keystroke cost proportional
    to what the keystroke can change, not to the program.

    Edits are modelled as *pins*: ``resolve({slot: label})`` makes ``label``
    a floor of ``slot`` (as if the user wrote the annotation), and
    ``resolve({slot: None})`` removes the pin again.  Both raising and
    lowering are supported; the cone is reset to ``⊥`` (plus pins) and the
    SCC schedule is replayed over the cone's components only, which yields
    exactly the assignment a from-scratch solve with the same pins would.
    """

    def __init__(
        self,
        lattice: Lattice,
        constraints: Sequence[Constraint],
        *,
        cache: Optional[NormalisationCache] = None,
        backend: str = "graph",
        workers: int = 1,
        graph: Optional[PropagationGraph] = None,
    ) -> None:
        self.lattice = lattice
        self.backend = backend
        self.workers = workers
        self._cache = cache
        #: ``graph`` lets a caller that already built the propagation graph
        #: over exactly these constraints (e.g. a workspace adopting a cold
        #: solution) hand it over instead of paying a second construction.
        self.graph = graph or PropagationGraph(lattice, constraints, cache=cache)
        self._pins: Dict[LabelVar, Label] = {}
        self._assignment: Optional[Dict[LabelVar, Label]] = None
        #: Cached per-check verdicts, aligned with ``graph.checks``.
        self._check_results: List[Optional[InferenceConflict]] = []
        self._check_vars: List[FrozenSet[LabelVar]] = [
            free_vars(lhs) | free_vars(rhs) for lhs, rhs, _ in self.graph.checks
        ]
        self._solution: Optional[Solution] = None

    @property
    def pins(self) -> Dict[LabelVar, Label]:
        """The currently pinned slot labels (a copy)."""
        return dict(self._pins)

    def solve(self) -> Solution:
        """The least solution above the current pins (cached)."""
        if self._solution is None:
            recorder = current_recorder()
            start = time.perf_counter()
            with recorder.span(
                "solver.solve",
                edges=len(self.graph.edges),
                variables=len(self.graph.variables),
                persistent=True,
            ):
                stats = self.graph._new_stats()
                self._assignment = self.graph.fresh_assignment(self._pins)
                self.graph.propagate(self._assignment, stats)
                self._check_results = self.graph.check_conflicts(self._assignment)
            stats.solve_ms = (time.perf_counter() - start) * 1000.0
            self._solution = self._snapshot(stats)
        return self._solution

    def resolve(
        self, changes: Mapping[LabelVar, Optional[Label]]
    ) -> Solution:
        """Incrementally re-solve after editing the given label slots.

        ``changes`` maps each edited slot to its new pinned label (``None``
        removes the pin).  Only the forward closure (cone of influence) of
        the edited slots is reset and re-propagated; checks outside the
        cone keep their cached verdicts.  The result is identical to a
        from-scratch :meth:`solve` with the updated pins.
        """
        if self._assignment is None:
            for var, label in changes.items():
                self._apply_pin(var, label)
            return self.solve()
        recorder = current_recorder()
        start = time.perf_counter()
        for var, label in changes.items():
            self._apply_pin(var, label)
        graph = self.graph
        cone = graph.cone_of(changes)
        components = {graph.component_of[var] for var in cone}
        with recorder.span(
            "solver.resolve",
            edited=len(changes),
            cone=len(cone),
            components=len(components),
        ):
            stats = graph._new_stats()
            # Reset the cone to ⊥ (plus pins) and replay the schedule over its
            # components; an SCC is entirely inside or outside the cone, so the
            # restricted schedule sees exactly the edges it must revisit.
            for var in cone:
                self._assignment[var] = self.lattice.bottom
                pin = self._pins.get(var)
                if pin is not None:
                    self._assignment[var] = pin
            graph.propagate(self._assignment, stats, components)
            # Slots outside the graph (never constrained) still surface edits.
            for var, label in changes.items():
                if var not in graph.component_of:
                    if label is None:
                        self._assignment.pop(var, None)
                    else:
                        self._assignment[var] = label
            affected = [
                index
                for index, variables in enumerate(self._check_vars)
                if variables & cone
            ]
            for index, verdict in zip(
                affected, graph.check_conflicts(self._assignment, affected)
            ):
                self._check_results[index] = verdict
        stats.solve_ms = (time.perf_counter() - start) * 1000.0
        if recorder.enabled:
            # Cache accounting: how much of the graph the edit did *not*
            # have to revisit -- the quantity that makes the incremental
            # path worth having.
            recorder.count("solver.resolve.calls")
            recorder.count("solver.resolve.cone_vars", len(cone))
            recorder.count(
                "solver.resolve.vars_reused", len(graph.variables) - len(cone)
            )
            recorder.count(
                "solver.resolve.edges_skipped",
                len(graph.edges) - stats.edges_visited,
            )
            recorder.count("solver.resolve.checks_reevaluated", len(affected))
            recorder.count(
                "solver.resolve.checks_cached",
                len(self._check_results) - len(affected),
            )
        self._solution = self._snapshot(stats)
        return self._solution

    def adopt(self, solution: Solution) -> None:
        """Seed the persistent state from an externally computed solution.

        Used by a workspace whose *initial* solve ran through another
        backend (``solve(..., backend="packed")``): the assignment is
        taken over, the per-check verdicts are re-derived against this
        solver's graph (so they are aligned for incremental updates), and
        ``solution`` becomes the cached result.  Only valid before any
        pin has been applied.
        """
        if self._pins:
            raise ValueError("adopt() requires a pristine solver (no pins)")
        self._assignment = dict(solution.assignment)
        for var in self.graph.variables:
            self._assignment.setdefault(var, self.lattice.bottom)
        self._check_results = self.graph.check_conflicts(self._assignment)
        self._solution = solution

    def rebase(
        self,
        constraints: Sequence[Constraint],
        *,
        pins: Optional[Mapping[LabelVar, Label]] = None,
    ) -> Solution:
        """Re-anchor the solver on an edited constraint system.

        Where :meth:`resolve` handles *pin* edits over a fixed system,
        ``rebase`` handles *structural* edits: the constraint list itself
        changed (a workspace re-generated some declarations).  The new
        propagation graph is built (through the shared
        :class:`~repro.inference.graph.NormalisationCache`, so surviving
        constraints skip term decomposition), and only the cone of
        influence of what actually changed is re-solved:

        * seeds are the targets of *added or removed* edges (by the
          ``(lhs, target, cover)`` dedup key), variables new to the
          system, and variables whose pin changed;
        * every surviving variable outside the cone keeps its converged
          value -- correct because a variable none of whose in-edges
          changed, and none of whose sources changed value, is still at
          its least fixpoint (a changed source would put it in the
          forward closure);
        * check verdicts migrate: a check that previously *passed* and
          whose variables lie outside the cone keeps its verdict;
          failing or cone-touching checks are re-evaluated against the
          new graph (conflicts embed provenance and cores, which must
          reflect the new system).

        ``pins`` optionally replaces the pin set wholesale (the workspace
        re-keys pins across re-allocated slot variables); ``None`` keeps
        the current pins.  Removing a pin this way restores the inferred
        least solution for that slot, exactly as ``resolve({slot: None})``
        does over a fixed system.
        """
        recorder = current_recorder()
        start = time.perf_counter()
        old_graph = self.graph
        old_pins = self._pins
        new_pins = dict(pins) if pins is not None else dict(old_pins)
        cache_hits_before = self._cache.hits if self._cache is not None else 0
        new_graph = PropagationGraph(self.lattice, constraints, cache=self._cache)
        if self._assignment is None:
            self.graph = new_graph
            self._pins = new_pins
            self._check_results = []
            self._check_vars = [
                free_vars(lhs) | free_vars(rhs) for lhs, rhs, _ in new_graph.checks
            ]
            self._solution = None
            return self.solve()
        old_assignment = self._assignment
        old_keys = {(e.lhs, e.target, e.cover) for e in old_graph.edges}
        new_keys = {(e.lhs, e.target, e.cover) for e in new_graph.edges}
        added = new_keys - old_keys
        removed = old_keys - new_keys
        seeds = set()
        for _lhs, target, _cover in added:
            seeds.add(target)
        for _lhs, target, _cover in removed:
            if target in new_graph.component_of:
                seeds.add(target)
        carried: Dict[LabelVar, Label] = {}
        for var in new_graph.variables:
            value = old_assignment.get(var)
            if value is None:
                seeds.add(var)
                value = self.lattice.bottom
            carried[var] = value
        for var in set(old_pins) | set(new_pins):
            if var not in new_graph.component_of:
                continue
            before, after = old_pins.get(var), new_pins.get(var)
            if (before is None) != (after is None) or (
                before is not None and not self.lattice.equal(before, after)
            ):
                seeds.add(var)
        self._pins = new_pins
        cone = new_graph.cone_of(seeds)
        components = {new_graph.component_of[var] for var in cone}
        with recorder.span(
            "solver.rebase",
            edges_added=len(added),
            edges_removed=len(removed),
            seeds=len(seeds),
            cone=len(cone),
            components=len(components),
        ):
            stats = new_graph._new_stats()
            for var in cone:
                pin = self._pins.get(var)
                carried[var] = pin if pin is not None else self.lattice.bottom
            if components:
                if self.backend == "graph":
                    new_graph.propagate(carried, stats, components)
                else:
                    self._solve_cone_packed(new_graph, cone, carried, stats)
            for var, label in self._pins.items():
                if var not in new_graph.component_of:
                    carried[var] = label
            passed = {
                (lhs, rhs)
                for (lhs, rhs, _origin), verdict in zip(
                    old_graph.checks, self._check_results
                )
                if verdict is None
            }
            self._check_vars = [
                free_vars(lhs) | free_vars(rhs) for lhs, rhs, _ in new_graph.checks
            ]
            results: List[Optional[InferenceConflict]] = [None] * len(new_graph.checks)
            affected = [
                index
                for index, (lhs, rhs, _origin) in enumerate(new_graph.checks)
                if (lhs, rhs) not in passed or (self._check_vars[index] & cone)
            ]
            self.graph = new_graph
            self._assignment = carried
            for index, verdict in zip(
                affected, new_graph.check_conflicts(carried, affected)
            ):
                results[index] = verdict
            self._check_results = results
        stats.solve_ms = (time.perf_counter() - start) * 1000.0
        if recorder.enabled:
            recorder.count("solver.rebase.calls")
            recorder.count("solver.rebase.edges_added", len(added))
            recorder.count("solver.rebase.edges_removed", len(removed))
            recorder.count("solver.rebase.cone_vars", len(cone))
            recorder.count(
                "solver.rebase.vars_reused", len(new_graph.variables) - len(cone)
            )
            recorder.count("solver.rebase.checks_reevaluated", len(affected))
            recorder.count(
                "solver.rebase.checks_cached", len(results) - len(affected)
            )
            if self._cache is not None:
                recorder.count(
                    "solver.rebase.normalisations_cached",
                    self._cache.hits - cache_hits_before,
                )
        self._solution = self._snapshot(stats)
        return self._solution

    def _solve_cone_packed(
        self,
        graph: PropagationGraph,
        cone,
        carried: Dict[LabelVar, Label],
        stats,
    ) -> None:
        """Re-solve the cone through the configured (packed) backend.

        The cone is forward-closed, so every in-edge of a cone variable
        has converged sources outside it: substituting those sources with
        their carried values yields a *self-contained* subsystem whose
        least solution is exactly the restriction of the global one.
        Pins become explicit floor constraints.  Checks, cores and
        witnesses are never computed here -- they always run against the
        main graph, so the output is byte-identical across backends.
        """
        sub: List[Constraint] = []
        edge_indices = sorted(
            {index for var in cone for index in graph.edges_into.get(var, ())}
        )
        for index in edge_indices:
            edge = graph.edges[index]
            lhs = _substitute(edge.lhs, cone, carried, self.lattice)
            if edge.cover is None:
                rhs: Term = VarTerm(edge.target)
            else:
                rhs = join_terms(
                    self.lattice, [VarTerm(edge.target), ConstTerm(edge.cover)]
                )
            sub.append(Constraint(lhs, rhs, edge.origin.span, edge.origin.rule))
        for var in sorted(cone, key=lambda v: v.uid):
            pin = self._pins.get(var)
            if pin is not None:
                sub.append(
                    Constraint(ConstTerm(pin), VarTerm(var), var.span, rule="@pin")
                )
        solution = solve(
            self.lattice, sub, backend=self.backend, workers=self.workers
        )
        for var in cone:
            carried[var] = solution.value_of(var)
        sub_stats = solution.stats
        if sub_stats is not None:
            stats.backend = sub_stats.backend
            stats.encode_ms = sub_stats.encode_ms
            stats.sweeps = sub_stats.sweeps
            stats.waves = sub_stats.waves
            stats.max_wave_width = sub_stats.max_wave_width
            stats.clusters = sub_stats.clusters
            stats.workers = sub_stats.workers
            stats.fallback_reason = sub_stats.fallback_reason
            stats.edges_visited = sub_stats.edges_visited
            stats.worklist_pops = sub_stats.worklist_pops

    def _apply_pin(self, var: LabelVar, label: Optional[Label]) -> None:
        if label is None:
            self._pins.pop(var, None)
        else:
            self._pins[var] = label

    def _snapshot(self, stats) -> Solution:
        solution = Solution(
            self.lattice,
            dict(self._assignment or {}),
            [c for c in self._check_results if c is not None],
            iterations=stats.worklist_pops,
            propagation_count=len(self.graph.edges),
            check_count=len(self.graph.checks),
        )
        solution.stats = stats
        solution.graph = self.graph
        return solution


def _substitute(
    term: Term,
    cone,
    carried: Dict[LabelVar, Label],
    lattice: Lattice,
) -> Term:
    """Replace out-of-cone variables in ``term`` with their carried values."""
    if isinstance(term, VarTerm):
        if term.var in cone:
            return term
        return ConstTerm(carried.get(term.var, lattice.bottom))
    if isinstance(term, JoinTerm):
        return join_terms(
            lattice, [_substitute(part, cone, carried, lattice) for part in term.parts]
        )
    if isinstance(term, MeetTerm):
        return meet_terms(
            lattice, [_substitute(part, cone, carried, lattice) for part in term.parts]
        )
    return term


def infer_labels(
    program: Program,
    lattice: Optional[Lattice] = None,
    *,
    allow_declassification: bool = False,
    presolve: bool = False,
    backend: str = "graph",
    solver_workers: int = 1,
) -> InferenceResult:
    """Infer a least label assignment for ``program`` under ``lattice``.

    The returned assignment is point-wise smallest among all assignments
    satisfying the Figure 5–7 side conditions (missing annotations default
    as low as the flows permit).  The one exception is ``@pc(infer)``
    control annotations, which are solved to the *greatest* pc admissible
    against that least assignment (the least pc would always be the
    uninformative ⊥).  When no assignment exists, the conflicts
    are reported as diagnostics whose spans and unsatisfiable cores point at
    the source constructs that clash.
    """
    resolved = lattice or TwoPointLattice()
    recorder = current_recorder()
    with recorder.span("infer.generate") as generate_span:
        generation = generate_constraints(
            program, resolved, allow_declassification=allow_declassification
        )
    if recorder.enabled:
        generate_span.attrs["constraints"] = len(generation.constraints)
        generate_span.attrs["slots"] = len(generation.sites)
        recorder.count("infer.runs")
        recorder.count("infer.constraints_generated", len(generation.constraints))
        recorder.count("infer.slots", len(generation.sites))
    solution = solve(
        resolved,
        generation.constraints,
        presolve=presolve,
        backend=backend,
        workers=solver_workers,
    )
    if solution.ok and generation.control_pc_vars:
        with recorder.span("infer.maximise-pc", pcs=len(generation.control_pc_vars)):
            solution = _maximise_control_pcs(
                resolved,
                generation,
                solution,
                backend=backend,
                workers=solver_workers,
            )
    inferred = [
        InferredLabel(
            site.hint,
            site.span,
            # Augmentation slots sit on top of a declared floor: report the
            # effective label, not the bare variable's (often ⊥) value.
            solution.value_of(site.var)
            if site.floor is None
            else resolved.join(solution.value_of(site.var), site.floor),
        )
        for site in generation.sites
    ]
    diagnostics = list(generation.errors)
    diagnostics.extend(
        conflict.as_diagnostic(resolved) for conflict in solution.conflicts
    )
    with recorder.span("infer.elaborate"):
        elaborated = elaborate_program(generation, solution)
    return InferenceResult(
        program,
        resolved,
        generation,
        solution,
        inferred,
        diagnostics,
        elaborated,
    )
