"""The inference pipeline: generate → solve → elaborate.

:func:`infer_labels` is the public entry point.  It produces an
:class:`InferenceResult` carrying the solved per-slot assignment (for
reporting), the conflicts mapped back to source spans as
:class:`~repro.ifc.errors.IfcDiagnostic` values, and -- when the system is
satisfiable -- a fully annotated program ready for independent
re-verification by the stock checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ifc.errors import IfcDiagnostic
from repro.inference.constraints import Constraint
from repro.inference.elaborate import elaborate_program
from repro.inference.generate import GenerationResult, generate_constraints
from repro.inference.solve import Solution, solve
from repro.inference.terms import ConstTerm, VarTerm, evaluate, free_vars
from repro.lattice.base import Label, Lattice
from repro.lattice.two_point import TwoPointLattice
from repro.syntax.program import Program
from repro.syntax.source import SourceSpan


@dataclass(frozen=True)
class InferredLabel:
    """One solved annotation slot, for reports and the CLI."""

    hint: str
    span: SourceSpan
    label: Label

    def describe(self, lattice: Lattice) -> str:
        location = "" if self.span.is_unknown() else f" ({self.span})"
        return f"{self.hint}: {lattice.format_label(self.label)}{location}"


@dataclass
class InferenceResult:
    """Outcome of constraint-based label inference over one program."""

    program: Program
    lattice: Lattice
    generation: GenerationResult
    solution: Solution
    #: Solved labels, one per annotation slot that received a variable,
    #: in slot-discovery order.
    inferred: List[InferredLabel] = field(default_factory=list)
    #: Label errors from generation plus conflicts from solving.
    diagnostics: List[IfcDiagnostic] = field(default_factory=list)
    #: The fully annotated program (best effort when there are conflicts).
    elaborated: Optional[Program] = None

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    @property
    def constraint_count(self) -> int:
        return len(self.generation.constraints)

    @property
    def variable_count(self) -> int:
        return len(self.inferred) + len(self.generation.control_pc_vars)

    def assignment_by_hint(self) -> Dict[str, Label]:
        """The solved assignment keyed by slot description (for tests/JSON)."""
        return {site.hint: site.label for site in self.inferred}


def _maximise_control_pcs(
    lattice: Lattice, generation: GenerationResult, solution: Solution
) -> Solution:
    """Re-solve with each ``@pc(infer)`` variable pushed as high as it goes.

    A control's pc only ever appears on constraint *left* sides (it lower
    bounds the writes the body performs), so the least solution would
    trivially report ⊥ for every program.  The informative answer is the
    *greatest* admissible pc -- admissible against the least labels of
    everything else: every non-pc slot is frozen at its least-solution
    value, so a raised pc never drags unconstrained slots upward (that
    would break ``infer_labels``' least-label contract).  With the slots
    frozen the answer is direct: a pc variable occurs only on constraint
    left sides, so its greatest admissible value is the meet of the
    right-hand sides of the constraints that mention it, evaluated under
    the least solution (⊤ when unconstrained).  One re-solve with the pc
    variables pinned there produces the reported solution; it cannot
    conflict by construction, but if it somehow does the least solution is
    returned unchanged.
    """
    candidates = {}
    for var in {var for _control, var in generation.control_pc_vars}:
        bounds = [
            evaluate(constraint.rhs, lattice, solution.assignment)
            for constraint in generation.constraints
            if var in free_vars(constraint.lhs)
        ]
        candidates[var] = lattice.meet_all(bounds)
    if all(lattice.equal(label, lattice.bottom) for label in candidates.values()):
        return solution
    freezes = [
        Constraint(
            VarTerm(site.var),
            ConstTerm(solution.value_of(site.var)),
            site.span,
            rule="@pc",
            reason=f"{site.hint} is frozen at its least label",
        )
        for site in generation.sites
    ]
    pins = [
        Constraint(
            ConstTerm(label),
            VarTerm(var),
            var.span,
            rule="@pc",
            reason=f"greatest admissible {var.hint}",
        )
        for var, label in candidates.items()
    ]
    boosted = solve(lattice, generation.constraints + freezes + pins)
    return boosted if boosted.ok else solution


def infer_labels(
    program: Program,
    lattice: Optional[Lattice] = None,
    *,
    allow_declassification: bool = False,
) -> InferenceResult:
    """Infer a least label assignment for ``program`` under ``lattice``.

    The returned assignment is point-wise smallest among all assignments
    satisfying the Figure 5–7 side conditions (missing annotations default
    as low as the flows permit).  The one exception is ``@pc(infer)``
    control annotations, which are solved to the *greatest* pc admissible
    against that least assignment (the least pc would always be the
    uninformative ⊥).  When no assignment exists, the conflicts
    are reported as diagnostics whose spans and unsatisfiable cores point at
    the source constructs that clash.
    """
    resolved = lattice or TwoPointLattice()
    generation = generate_constraints(
        program, resolved, allow_declassification=allow_declassification
    )
    solution = solve(resolved, generation.constraints)
    if solution.ok and generation.control_pc_vars:
        solution = _maximise_control_pcs(resolved, generation, solution)
    inferred = [
        InferredLabel(
            site.hint,
            site.span,
            # Augmentation slots sit on top of a declared floor: report the
            # effective label, not the bare variable's (often ⊥) value.
            solution.value_of(site.var)
            if site.floor is None
            else resolved.join(solution.value_of(site.var), site.floor),
        )
        for site in generation.sites
    ]
    diagnostics = list(generation.errors)
    diagnostics.extend(
        conflict.as_diagnostic(resolved) for conflict in solution.conflicts
    )
    elaborated = elaborate_program(generation, solution)
    return InferenceResult(
        program,
        resolved,
        generation,
        solution,
        inferred,
        diagnostics,
        elaborated,
    )
