"""The inference pipeline: generate → solve → elaborate.

:func:`infer_labels` is the public entry point.  It produces an
:class:`InferenceResult` carrying the solved per-slot assignment (for
reporting), the conflicts mapped back to source spans as
:class:`~repro.ifc.errors.IfcDiagnostic` values, and -- when the system is
satisfiable -- a fully annotated program ready for independent
re-verification by the stock checker.

:class:`Solver` is the persistent counterpart for interactive use (an
IDE/LSP-style annotation assistant): it builds the propagation graph once
and, after an annotation edit, :meth:`Solver.resolve` recomputes only the
edit's cone of influence instead of restarting from scratch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence

from repro.ifc.errors import IfcDiagnostic
from repro.inference.constraints import Constraint
from repro.inference.elaborate import elaborate_program
from repro.inference.generate import GenerationResult, generate_constraints
from repro.inference.graph import PropagationGraph
from repro.inference.solve import InferenceConflict, Solution, solve
from repro.inference.terms import (
    ConstTerm,
    LabelVar,
    VarTerm,
    evaluate,
    free_vars,
)
from repro.lattice.base import Label, Lattice
from repro.lattice.two_point import TwoPointLattice
from repro.syntax.program import Program
from repro.syntax.source import SourceSpan
from repro.telemetry.recorder import current_recorder


@dataclass(frozen=True)
class InferredLabel:
    """One solved annotation slot, for reports and the CLI."""

    hint: str
    span: SourceSpan
    label: Label

    def describe(self, lattice: Lattice) -> str:
        location = "" if self.span.is_unknown() else f" ({self.span})"
        return f"{self.hint}: {lattice.format_label(self.label)}{location}"


@dataclass
class InferenceResult:
    """Outcome of constraint-based label inference over one program."""

    program: Program
    lattice: Lattice
    generation: GenerationResult
    solution: Solution
    #: Solved labels, one per annotation slot that received a variable,
    #: in slot-discovery order.
    inferred: List[InferredLabel] = field(default_factory=list)
    #: Label errors from generation plus conflicts from solving.
    diagnostics: List[IfcDiagnostic] = field(default_factory=list)
    #: The fully annotated program (best effort when there are conflicts).
    elaborated: Optional[Program] = None

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    @property
    def constraint_count(self) -> int:
        return len(self.generation.constraints)

    @property
    def variable_count(self) -> int:
        return len(self.inferred) + len(self.generation.control_pc_vars)

    def assignment_by_hint(self) -> Dict[str, Label]:
        """The solved assignment keyed by slot description (for tests/JSON)."""
        return {site.hint: site.label for site in self.inferred}


def _maximise_control_pcs(
    lattice: Lattice,
    generation: GenerationResult,
    solution: Solution,
    *,
    backend: str = "graph",
    workers: int = 1,
) -> Solution:
    """Re-solve with each ``@pc(infer)`` variable pushed as high as it goes.

    A control's pc only ever appears on constraint *left* sides (it lower
    bounds the writes the body performs), so the least solution would
    trivially report ⊥ for every program.  The informative answer is the
    *greatest* admissible pc -- admissible against the least labels of
    everything else: every non-pc slot is frozen at its least-solution
    value, so a raised pc never drags unconstrained slots upward (that
    would break ``infer_labels``' least-label contract).  With the slots
    frozen the answer is direct: a pc variable occurs only on constraint
    left sides, so its greatest admissible value is the meet of the
    right-hand sides of the constraints that mention it, evaluated under
    the least solution (⊤ when unconstrained).  One re-solve with the pc
    variables pinned there produces the reported solution; it cannot
    conflict by construction, but if it somehow does the least solution is
    returned unchanged.
    """
    candidates = {}
    # ``control_pc_vars`` pairs are walked through a set; sort by uid so the
    # pin-constraint order (and everything downstream of it) is stable
    # across runs regardless of PYTHONHASHSEED.
    pc_vars = sorted(
        {var for _control, var in generation.control_pc_vars}, key=lambda v: v.uid
    )
    for var in pc_vars:
        bounds = [
            evaluate(constraint.rhs, lattice, solution.assignment)
            for constraint in generation.constraints
            if var in free_vars(constraint.lhs)
        ]
        candidates[var] = lattice.meet_all(bounds)
    if all(lattice.equal(label, lattice.bottom) for label in candidates.values()):
        return solution
    freezes = [
        Constraint(
            VarTerm(site.var),
            ConstTerm(solution.value_of(site.var)),
            site.span,
            rule="@pc",
            reason=f"{site.hint} is frozen at its least label",
        )
        for site in generation.sites
    ]
    pins = [
        Constraint(
            ConstTerm(label),
            VarTerm(var),
            var.span,
            rule="@pc",
            reason=f"greatest admissible {var.hint}",
        )
        for var, label in candidates.items()
    ]
    boosted = solve(
        lattice,
        generation.constraints + freezes + pins,
        backend=backend,
        workers=workers,
    )
    if not boosted.ok:
        return solution
    # Report the *user's* constraint system, not the internal augmented one
    # (whose freeze/pin constraints would inflate edge and check counts):
    # keep the primary solve's counters and structural stats, accumulating
    # the time this second solve took so solve_ms stays the total solver
    # share of infer.
    boosted.propagation_count = solution.propagation_count
    boosted.check_count = solution.check_count
    boosted.iterations = solution.iterations
    if solution.stats is not None and boosted.stats is not None:
        solution.stats.solve_ms += boosted.stats.solve_ms
        boosted.stats = solution.stats
    return boosted


class Solver:
    """A persistent solver over one constraint system.

    Construction builds the :class:`~repro.inference.graph.PropagationGraph`
    once (normalisation, edge deduplication, SCC condensation).
    :meth:`solve` produces the least solution; after an edit,
    :meth:`resolve` recomputes *only the cone of influence* of the edited
    label slots -- everything the edit cannot reach keeps its converged
    value and its cached check verdicts.  This is the reasoning core an
    IDE-style annotation assistant needs: per-keystroke cost proportional
    to what the keystroke can change, not to the program.

    Edits are modelled as *pins*: ``resolve({slot: label})`` makes ``label``
    a floor of ``slot`` (as if the user wrote the annotation), and
    ``resolve({slot: None})`` removes the pin again.  Both raising and
    lowering are supported; the cone is reset to ``⊥`` (plus pins) and the
    SCC schedule is replayed over the cone's components only, which yields
    exactly the assignment a from-scratch solve with the same pins would.
    """

    def __init__(self, lattice: Lattice, constraints: Sequence[Constraint]) -> None:
        self.lattice = lattice
        self.graph = PropagationGraph(lattice, constraints)
        self._pins: Dict[LabelVar, Label] = {}
        self._assignment: Optional[Dict[LabelVar, Label]] = None
        #: Cached per-check verdicts, aligned with ``graph.checks``.
        self._check_results: List[Optional[InferenceConflict]] = []
        self._check_vars: List[FrozenSet[LabelVar]] = [
            free_vars(lhs) | free_vars(rhs) for lhs, rhs, _ in self.graph.checks
        ]
        self._solution: Optional[Solution] = None

    @property
    def pins(self) -> Dict[LabelVar, Label]:
        """The currently pinned slot labels (a copy)."""
        return dict(self._pins)

    def solve(self) -> Solution:
        """The least solution above the current pins (cached)."""
        if self._solution is None:
            recorder = current_recorder()
            start = time.perf_counter()
            with recorder.span(
                "solver.solve",
                edges=len(self.graph.edges),
                variables=len(self.graph.variables),
                persistent=True,
            ):
                stats = self.graph._new_stats()
                self._assignment = self.graph.fresh_assignment(self._pins)
                self.graph.propagate(self._assignment, stats)
                self._check_results = self.graph.check_conflicts(self._assignment)
            stats.solve_ms = (time.perf_counter() - start) * 1000.0
            self._solution = self._snapshot(stats)
        return self._solution

    def resolve(
        self, changes: Mapping[LabelVar, Optional[Label]]
    ) -> Solution:
        """Incrementally re-solve after editing the given label slots.

        ``changes`` maps each edited slot to its new pinned label (``None``
        removes the pin).  Only the forward closure (cone of influence) of
        the edited slots is reset and re-propagated; checks outside the
        cone keep their cached verdicts.  The result is identical to a
        from-scratch :meth:`solve` with the updated pins.
        """
        if self._assignment is None:
            for var, label in changes.items():
                self._apply_pin(var, label)
            return self.solve()
        recorder = current_recorder()
        start = time.perf_counter()
        for var, label in changes.items():
            self._apply_pin(var, label)
        graph = self.graph
        cone = graph.cone_of(changes)
        components = {graph.component_of[var] for var in cone}
        with recorder.span(
            "solver.resolve",
            edited=len(changes),
            cone=len(cone),
            components=len(components),
        ):
            stats = graph._new_stats()
            # Reset the cone to ⊥ (plus pins) and replay the schedule over its
            # components; an SCC is entirely inside or outside the cone, so the
            # restricted schedule sees exactly the edges it must revisit.
            for var in cone:
                self._assignment[var] = self.lattice.bottom
                pin = self._pins.get(var)
                if pin is not None:
                    self._assignment[var] = pin
            graph.propagate(self._assignment, stats, components)
            # Slots outside the graph (never constrained) still surface edits.
            for var, label in changes.items():
                if var not in graph.component_of:
                    if label is None:
                        self._assignment.pop(var, None)
                    else:
                        self._assignment[var] = label
            affected = [
                index
                for index, variables in enumerate(self._check_vars)
                if variables & cone
            ]
            for index, verdict in zip(
                affected, graph.check_conflicts(self._assignment, affected)
            ):
                self._check_results[index] = verdict
        stats.solve_ms = (time.perf_counter() - start) * 1000.0
        if recorder.enabled:
            # Cache accounting: how much of the graph the edit did *not*
            # have to revisit -- the quantity that makes the incremental
            # path worth having.
            recorder.count("solver.resolve.calls")
            recorder.count("solver.resolve.cone_vars", len(cone))
            recorder.count(
                "solver.resolve.vars_reused", len(graph.variables) - len(cone)
            )
            recorder.count(
                "solver.resolve.edges_skipped",
                len(graph.edges) - stats.edges_visited,
            )
            recorder.count("solver.resolve.checks_reevaluated", len(affected))
            recorder.count(
                "solver.resolve.checks_cached",
                len(self._check_results) - len(affected),
            )
        self._solution = self._snapshot(stats)
        return self._solution

    def _apply_pin(self, var: LabelVar, label: Optional[Label]) -> None:
        if label is None:
            self._pins.pop(var, None)
        else:
            self._pins[var] = label

    def _snapshot(self, stats) -> Solution:
        solution = Solution(
            self.lattice,
            dict(self._assignment or {}),
            [c for c in self._check_results if c is not None],
            iterations=stats.worklist_pops,
            propagation_count=len(self.graph.edges),
            check_count=len(self.graph.checks),
        )
        solution.stats = stats
        solution.graph = self.graph
        return solution


def infer_labels(
    program: Program,
    lattice: Optional[Lattice] = None,
    *,
    allow_declassification: bool = False,
    presolve: bool = False,
    backend: str = "graph",
    solver_workers: int = 1,
) -> InferenceResult:
    """Infer a least label assignment for ``program`` under ``lattice``.

    The returned assignment is point-wise smallest among all assignments
    satisfying the Figure 5–7 side conditions (missing annotations default
    as low as the flows permit).  The one exception is ``@pc(infer)``
    control annotations, which are solved to the *greatest* pc admissible
    against that least assignment (the least pc would always be the
    uninformative ⊥).  When no assignment exists, the conflicts
    are reported as diagnostics whose spans and unsatisfiable cores point at
    the source constructs that clash.
    """
    resolved = lattice or TwoPointLattice()
    recorder = current_recorder()
    with recorder.span("infer.generate") as generate_span:
        generation = generate_constraints(
            program, resolved, allow_declassification=allow_declassification
        )
    if recorder.enabled:
        generate_span.attrs["constraints"] = len(generation.constraints)
        generate_span.attrs["slots"] = len(generation.sites)
        recorder.count("infer.runs")
        recorder.count("infer.constraints_generated", len(generation.constraints))
        recorder.count("infer.slots", len(generation.sites))
    solution = solve(
        resolved,
        generation.constraints,
        presolve=presolve,
        backend=backend,
        workers=solver_workers,
    )
    if solution.ok and generation.control_pc_vars:
        with recorder.span("infer.maximise-pc", pcs=len(generation.control_pc_vars)):
            solution = _maximise_control_pcs(
                resolved,
                generation,
                solution,
                backend=backend,
                workers=solver_workers,
            )
    inferred = [
        InferredLabel(
            site.hint,
            site.span,
            # Augmentation slots sit on top of a declared floor: report the
            # effective label, not the bare variable's (often ⊥) value.
            solution.value_of(site.var)
            if site.floor is None
            else resolved.join(solution.value_of(site.var), site.floor),
        )
        for site in generation.sites
    ]
    diagnostics = list(generation.errors)
    diagnostics.extend(
        conflict.as_diagnostic(resolved) for conflict in solution.conflicts
    )
    with recorder.span("infer.elaborate"):
        elaborated = elaborate_program(generation, solution)
    return InferenceResult(
        program,
        resolved,
        generation,
        solution,
        inferred,
        diagnostics,
        elaborated,
    )
