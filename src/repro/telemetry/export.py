"""Exporters: JSON-lines events, Chrome ``trace_event`` files, text trees.

Three projections of one :class:`~repro.telemetry.recorder.TraceRecorder`:

* :func:`to_events` / :func:`to_jsonl` -- a structured event log, one JSON
  object per line (``span`` / ``counter`` / ``histogram`` records), the
  stable machine-readable form for log pipelines and diffing;
* :func:`to_chrome_trace` / :func:`write_chrome_trace` -- the Chrome
  ``trace_event`` JSON format (``ph: "X"`` complete events with
  microsecond timestamps), which ``chrome://tracing`` and Perfetto render
  as a flamegraph without any further tooling;
* :func:`format_trace_summary` -- a human-readable span tree with
  durations, aggregating large sibling groups (a 1,700-component solve
  prints one aggregate line, not 1,700), followed by the counters and
  histograms.

:func:`metrics_dict` is the aggregate view (``p4bid --metrics``): every
counter, histogram and per-span-name duration total, JSON-serialisable.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.telemetry.recorder import Span, TelemetryError, TraceRecorder

#: Sibling spans sharing a name beyond this count collapse to one
#: aggregate line in the text summary.
_AGGREGATE_THRESHOLD = 8


def _require_closed(recorder: TraceRecorder) -> None:
    open_spans = recorder.open_spans
    if open_spans:
        names = ", ".join(span.name for span in open_spans)
        raise TelemetryError(f"cannot export while spans are open: {names}")


# ---------------------------------------------------------------------------
# JSON-lines event log


def to_events(recorder: TraceRecorder) -> List[Dict[str, Any]]:
    """Every span, counter and histogram as one flat list of event dicts."""
    _require_closed(recorder)
    events: List[Dict[str, Any]] = [
        {
            "type": "meta",
            "clock": "perf_counter_us",
            "wall_epoch": recorder.wall_epoch,
        }
    ]
    for span in recorder.spans:
        events.append(
            {
                "type": "span",
                "sid": span.sid,
                "parent": span.parent,
                "name": span.name,
                "start_us": span.start_us,
                "dur_us": span.duration_us,
                "attrs": span.attrs,
            }
        )
    for name, value in sorted(recorder.counters.items()):
        events.append({"type": "counter", "name": name, "value": value})
    for name, histogram in sorted(recorder.histograms.items()):
        events.append({"type": "histogram", "name": name, **histogram.as_dict()})
    return events


def to_jsonl(recorder: TraceRecorder) -> str:
    """The event log as newline-delimited JSON (trailing newline included)."""
    return "".join(json.dumps(event) + "\n" for event in to_events(recorder))


# ---------------------------------------------------------------------------
# Chrome trace_event format


def to_chrome_trace(recorder: TraceRecorder) -> Dict[str, Any]:
    """The span tree in Chrome's ``trace_event`` JSON object format.

    Spans become ``ph: "X"`` (complete) events on one pid/tid; counters
    become ``ph: "C"`` events stamped at the trace end so the counter
    track shows the run's totals.  Load the written file directly in
    ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    _require_closed(recorder)
    end_us = max((span.end_us or 0.0 for span in recorder.spans), default=0.0)
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": "p4bid"},
        }
    ]
    for span in recorder.spans:
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": span.start_us,
                "dur": span.duration_us,
                "pid": 1,
                "tid": 1,
                "args": dict(span.attrs),
            }
        )
    for name, value in sorted(recorder.counters.items()):
        events.append(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": end_us,
                "pid": 1,
                "tid": 1,
                "args": {"value": value},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(recorder: TraceRecorder, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(recorder), handle, indent=2)
        handle.write("\n")


# ---------------------------------------------------------------------------
# aggregate metrics


def metrics_dict(recorder: TraceRecorder) -> Dict[str, Any]:
    """Counters, histograms and per-span-name totals, JSON-serialisable."""
    _require_closed(recorder)
    span_totals: Dict[str, Dict[str, Any]] = {}
    for span in recorder.spans:
        entry = span_totals.setdefault(span.name, {"count": 0, "total_ms": 0.0})
        entry["count"] += 1
        entry["total_ms"] += span.duration_ms
    return {
        "counters": dict(sorted(recorder.counters.items())),
        "histograms": {
            name: histogram.as_dict()
            for name, histogram in sorted(recorder.histograms.items())
        },
        "spans": dict(sorted(span_totals.items())),
    }


# ---------------------------------------------------------------------------
# human text summary


def _format_span_line(indent: str, label: str, ms: float) -> str:
    return f"{indent}{label:<{max(1, 56 - len(indent))}} {ms:>10.2f} ms"


def _render_children(
    recorder: TraceRecorder,
    parent: Optional[int],
    indent: str,
    lines: List[str],
    children_of: Dict[Optional[int], List[Span]],
) -> None:
    siblings = children_of.get(parent, [])
    by_name: Dict[str, List[Span]] = {}
    for span in siblings:
        by_name.setdefault(span.name, []).append(span)
    for span in siblings:
        group = by_name.get(span.name)
        if group is None:
            continue  # already rendered as an aggregate
        if len(group) > _AGGREGATE_THRESHOLD:
            total = sum(s.duration_ms for s in group)
            worst = max(s.duration_ms for s in group)
            lines.append(
                _format_span_line(
                    indent,
                    f"{span.name} ×{len(group)} (max {worst:.2f} ms)",
                    total,
                )
            )
            del by_name[span.name]
            continue
        label = span.name
        if span.attrs:
            rendered = ", ".join(f"{k}={v}" for k, v in span.attrs.items())
            label = f"{span.name} [{rendered}]"
        lines.append(_format_span_line(indent, label, span.duration_ms))
        _render_children(recorder, span.sid, indent + "  ", lines, children_of)
    # Exhausted groups were deleted above; nothing else to do.


def format_trace_summary(recorder: TraceRecorder) -> str:
    """A human-readable rendering of the span tree, counters, histograms."""
    _require_closed(recorder)
    lines: List[str] = ["== telemetry summary =="]
    children_of: Dict[Optional[int], List[Span]] = {}
    for span in recorder.spans:
        children_of.setdefault(span.parent, []).append(span)
    _render_children(recorder, None, "", lines, children_of)
    if recorder.counters:
        lines.append("-- counters --")
        for name, value in sorted(recorder.counters.items()):
            lines.append(f"  {name:<48} {value:>12}")
    if recorder.histograms:
        lines.append("-- histograms --")
        for name, histogram in sorted(recorder.histograms.items()):
            quantiles = histogram.percentiles()
            lines.append(
                f"  {name:<48} n={histogram.count} mean={histogram.mean:.1f} "
                f"min={histogram.minimum} max={histogram.maximum} "
                f"p50={quantiles['p50']:.1f} p95={quantiles['p95']:.1f} "
                f"p99={quantiles['p99']:.1f}"
            )
    return "\n".join(lines)
