"""Tracing spans, counters and histograms for the P4BID pipeline.

The instrumentation layer has exactly two implementations of one tiny
interface:

* :class:`Recorder` -- the **no-op** recorder, also the base class.  Every
  method is a constant-return stub and :attr:`Recorder.enabled` is
  ``False``, so instrumented hot paths can skip *all* bookkeeping with a
  single attribute test.  This is the ambient default: a process that
  never asks for telemetry pays one branch per coarse phase and nothing
  per edge, per component, or per rule site (the overhead guard in
  ``benchmarks/test_telemetry_overhead.py`` enforces this).
* :class:`TraceRecorder` -- records a **span tree** (monotonic clocks,
  parent ids, strict nesting), **counters**, and **histograms**, all in
  plain Python structures that the exporters in
  :mod:`repro.telemetry.export` turn into JSON-lines event logs, Chrome
  ``trace_event`` files (loadable in ``chrome://tracing`` / Perfetto) and
  human text summaries.

The ambient recorder is held in a :class:`contextvars.ContextVar`:
:func:`use_recorder` installs one for a ``with`` block and
:func:`current_recorder` reads it.  Instrumented code fetches the
recorder once per operation (never per loop iteration) and branches on
``enabled``::

    rec = current_recorder()
    with rec.span("solver.solve", edges=len(edges)):
        ...
        if rec.enabled:
            rec.count("solver.worklist_pops", pops)

Span timestamps are :func:`time.perf_counter` microseconds relative to
the recorder's construction, so they are monotonic, immune to wall-clock
steps, and directly usable as Chrome-trace ``ts`` values.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


class TelemetryError(Exception):
    """The span discipline was violated (exit without enter, overlap)."""


@dataclass
class Span:
    """One node of the span tree.

    ``start_us`` / ``end_us`` are microseconds on the recorder's monotonic
    clock (``perf_counter`` relative to the recorder's epoch); ``parent``
    is the ``sid`` of the enclosing span or ``None`` for a root.  ``attrs``
    carries whatever the instrumentation point attached (component sizes,
    edge counts, program names).
    """

    sid: int
    parent: Optional[int]
    name: str
    start_us: float
    end_us: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end_us is not None

    @property
    def duration_us(self) -> float:
        if self.end_us is None:
            raise TelemetryError(f"span {self.name!r} (sid {self.sid}) is still open")
        return self.end_us - self.start_us

    @property
    def duration_ms(self) -> float:
        return self.duration_us / 1000.0


@dataclass
class Histogram:
    """A streaming histogram: count/sum/min/max plus power-of-two buckets.

    Buckets are keyed by their inclusive upper bound ``2**k`` (the smallest
    power of two at or above the observed value), which is all the solver
    metrics need -- "how skewed are pops per component" -- without storing
    every observation of a 10k-component solve.
    """

    count: int = 0
    total: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    buckets: Dict[int, int] = field(default_factory=dict)

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        bound = 1
        while bound < value:
            bound <<= 1
        self.buckets[bound] = self.buckets.get(bound, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """The ``q``-th percentile estimated from the power-of-two buckets.

        Observations inside a bucket ``(2**(k-1), 2**k]`` are assumed
        uniformly distributed, so the estimate interpolates linearly within
        the bucket the target rank falls in, then clamps to the exactly
        tracked ``[min, max]`` envelope.  ``None`` on an empty histogram.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q!r}")
        if self.count == 0:
            return None
        assert self.minimum is not None and self.maximum is not None
        target = q / 100.0 * self.count
        cumulative = 0
        for bound, occupancy in sorted(self.buckets.items()):
            below = cumulative
            cumulative += occupancy
            if cumulative >= target:
                lower = bound / 2.0 if bound > 1 else 0.0
                estimate = lower + (bound - lower) * (target - below) / occupancy
                return min(max(estimate, self.minimum), self.maximum)
        return self.maximum

    def percentiles(self) -> Dict[str, Optional[float]]:
        """The standard latency trio (p50/p95/p99) as one dict."""
        return {
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            **self.percentiles(),
            "buckets": {str(bound): n for bound, n in sorted(self.buckets.items())},
        }


class _NullSpan:
    """The shared context manager the no-op recorder hands out."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Recorder:
    """The no-op recorder: every operation is a stub.

    Also the base class of :class:`TraceRecorder`, so instrumentation is
    written once against this interface.  ``enabled`` is the single test
    hot paths use to skip per-iteration work entirely.
    """

    __slots__ = ()

    #: Whether this recorder actually records.  Hot loops branch on this
    #: once, outside the loop.
    enabled: bool = False

    def span(self, name: str, **attrs: Any) -> Any:
        """A context manager timing one span (a shared no-op here)."""
        return _NULL_SPAN

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name``."""

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""


class _ActiveSpan:
    """Context manager pushing/popping one :class:`Span` on a recorder."""

    __slots__ = ("_recorder", "_name", "_attrs", "_span")

    def __init__(self, recorder: "TraceRecorder", name: str, attrs: Dict[str, Any]):
        self._recorder = recorder
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._recorder._open(self._name, self._attrs)
        return self._span

    def __exit__(self, *exc_info: object) -> bool:
        assert self._span is not None
        self._recorder._close(self._span)
        return False


class TraceRecorder(Recorder):
    """Records spans, counters and histograms for one run."""

    __slots__ = ("spans", "counters", "histograms", "_epoch", "wall_epoch", "_stack", "_next_sid")

    enabled = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._epoch = time.perf_counter()
        #: Wall-clock time at construction (for humans; spans use the
        #: monotonic clock).
        self.wall_epoch = time.time()
        self._stack: List[Span] = []
        self._next_sid = 0

    # -- recording ----------------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1_000_000.0

    def _open(self, name: str, attrs: Dict[str, Any]) -> Span:
        span = Span(
            sid=self._next_sid,
            parent=self._stack[-1].sid if self._stack else None,
            name=name,
            start_us=self._now_us(),
            attrs=attrs,
        )
        self._next_sid += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise TelemetryError(
                f"span {span.name!r} closed out of order (strict nesting required)"
            )
        self._stack.pop()
        span.end_us = self._now_us()

    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        return _ActiveSpan(self, name, attrs)

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.record(value)

    def add_span(
        self,
        name: str,
        duration_ms: float,
        *,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Append an already-measured span (a *projection* helper).

        Used when a sub-phase duration is known from another bookkeeping
        source but the fine-grained recorder was not installed -- e.g. the
        pipeline's private phase recorder projecting the solver's
        ``solve_ms`` statistic as a child of the infer phase.  The span is
        anchored at its parent's start so the tree remains well-nested.
        """
        start = parent.start_us if parent is not None else self._now_us()
        span = Span(
            sid=self._next_sid,
            parent=parent.sid if parent is not None else None,
            name=name,
            start_us=start,
            end_us=start + duration_ms * 1000.0,
            attrs=attrs,
        )
        self._next_sid += 1
        self.spans.append(span)
        return span

    # -- queries ------------------------------------------------------------

    @property
    def open_spans(self) -> List[Span]:
        return list(self._stack)

    def spans_named(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent == span.sid]

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent is None]

    def total_ms(self, name: str) -> float:
        """Summed duration of every (closed) span called ``name``."""
        return sum(span.duration_ms for span in self.spans_named(name))


#: The ambient recorder: the no-op singleton unless :func:`use_recorder`
#: installed something else in this context.
NULL_RECORDER = Recorder()
_CURRENT: ContextVar[Recorder] = ContextVar("p4bid_telemetry", default=NULL_RECORDER)


def current_recorder() -> Recorder:
    """The recorder instrumentation points should report to."""
    return _CURRENT.get()


@contextmanager
def use_recorder(recorder: Recorder) -> Iterator[Recorder]:
    """Install ``recorder`` as the ambient recorder for the ``with`` body."""
    token = _CURRENT.set(recorder)
    try:
        yield recorder
    finally:
        _CURRENT.reset(token)
