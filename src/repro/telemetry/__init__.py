"""``repro.telemetry`` -- tracing spans, metrics, and exporters.

A zero-dependency, disabled-by-default instrumentation layer for the whole
P4BID pipeline.  See :mod:`repro.telemetry.recorder` for the span/counter
model, :mod:`repro.telemetry.export` for the JSON-lines / Chrome-trace /
text exporters, and :mod:`repro.telemetry.instrument` for the hot-path
probes.  The CLI exposes it as ``p4bid --trace FILE`` / ``--metrics FILE``
/ ``--trace-summary``; library users install a recorder explicitly::

    from repro import check_source
    from repro.telemetry import TraceRecorder, use_recorder, format_trace_summary

    recorder = TraceRecorder()
    with use_recorder(recorder):
        report = check_source(source, infer=True)
    print(format_trace_summary(recorder))
"""

from repro.telemetry.export import (
    format_trace_summary,
    metrics_dict,
    to_chrome_trace,
    to_events,
    to_jsonl,
    write_chrome_trace,
)
from repro.telemetry.instrument import CountingLattice
from repro.telemetry.recorder import (
    NULL_RECORDER,
    Histogram,
    Recorder,
    Span,
    TelemetryError,
    TraceRecorder,
    current_recorder,
    use_recorder,
)

__all__ = [
    "CountingLattice",
    "Histogram",
    "NULL_RECORDER",
    "Recorder",
    "Span",
    "TelemetryError",
    "TraceRecorder",
    "current_recorder",
    "format_trace_summary",
    "metrics_dict",
    "to_chrome_trace",
    "to_events",
    "to_jsonl",
    "use_recorder",
    "write_chrome_trace",
]
