"""Hot-path instrumentation helpers.

:class:`CountingLattice` is a delegating lattice proxy that counts the
``leq`` / ``join`` / ``meet`` calls the solver performs.  It is installed
*only when a recorder is enabled* -- the disabled path keeps the raw
lattice, so counting costs the default configuration nothing.  Counts
accumulate in plain integer attributes (one add per call, no recorder
traffic in the loop) and :meth:`CountingLattice.flush` reports them as
``lattice.<op>[<name>]`` counters when the instrumented region finishes.

This is the data-layout probe the parallel bit-packed backend needs: how
many lattice operations a solve performs, per lattice, is exactly the
quantity a bitset encoding (join = ``|``) would amortise.
"""

from __future__ import annotations

from typing import Iterable

from repro.lattice.base import Label, Lattice
from repro.telemetry.recorder import Recorder


class CountingLattice(Lattice):
    """A lattice proxy counting the order/bound operations performed."""

    def __init__(self, inner: Lattice, recorder: Recorder, scope: str = "solver") -> None:
        self.inner = inner
        self.recorder = recorder
        self.scope = scope
        self.name = inner.name
        self.leq_calls = 0
        self.join_calls = 0
        self.meet_calls = 0
        # Bottom/top are pure per lattice; cache them so the proxy does not
        # add a property indirection on the solver's seeding path.
        self._bottom = inner.bottom
        self._top = inner.top

    # -- counted operations --------------------------------------------------

    def leq(self, a: Label, b: Label) -> bool:
        self.leq_calls += 1
        return self.inner.leq(a, b)

    def join(self, a: Label, b: Label) -> Label:
        self.join_calls += 1
        return self.inner.join(a, b)

    def meet(self, a: Label, b: Label) -> Label:
        self.meet_calls += 1
        return self.inner.meet(a, b)

    # -- pure delegation -----------------------------------------------------

    def labels(self) -> Iterable[Label]:
        return self.inner.labels()

    @property
    def bottom(self) -> Label:
        return self._bottom

    @property
    def top(self) -> Label:
        return self._top

    def height_bound(self) -> int:
        return self.inner.height_bound()

    def parse_label(self, text: str) -> Label:
        return self.inner.parse_label(text)

    def format_label(self, label: Label) -> str:
        return self.inner.format_label(label)

    # -- reporting -----------------------------------------------------------

    def flush(self) -> None:
        """Report the accumulated counts as recorder counters and reset."""
        recorder = self.recorder
        if self.leq_calls:
            recorder.count(f"lattice.leq[{self.name}].{self.scope}", self.leq_calls)
        if self.join_calls:
            recorder.count(f"lattice.join[{self.name}].{self.scope}", self.join_calls)
        if self.meet_calls:
            recorder.count(f"lattice.meet[{self.name}].{self.scope}", self.meet_calls)
        self.leq_calls = self.join_calls = self.meet_calls = 0
