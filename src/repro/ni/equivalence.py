"""Low-equivalence of runtime values (Definition 4.1).

Two values are *low-equivalent at level l* when every component whose
security label is ⊑ l is equal in both.  Components above l may differ
arbitrarily -- they are the secrets non-interference quantifies over.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.ifc.security_types import SHeader, SRecord, SStack, SecurityType
from repro.lattice.base import Label, Lattice
from repro.semantics.values import (
    BoolValue,
    HeaderValue,
    IntValue,
    RecordValue,
    StackValue,
    Value,
)


def _scalar_equal(a: Value, b: Value) -> bool:
    if isinstance(a, BoolValue) and isinstance(b, BoolValue):
        return a.value == b.value
    if isinstance(a, IntValue) and isinstance(b, IntValue):
        return a.value == b.value
    return a == b


def low_equivalent(
    lattice: Lattice,
    level: Label,
    sec_type: SecurityType,
    value_a: Value,
    value_b: Value,
) -> bool:
    """Whether ``value_a`` and ``value_b`` agree on every below-``level`` part."""
    return first_difference(lattice, level, sec_type, value_a, value_b) is None


def first_difference(
    lattice: Lattice,
    level: Label,
    sec_type: SecurityType,
    value_a: Value,
    value_b: Value,
    path: str = "",
) -> Optional[Tuple[str, Value, Value]]:
    """The first observable component where the two values differ, if any.

    Returns ``(path, a, b)`` naming the differing component, which the
    harness includes in counterexamples.
    """
    body = sec_type.body
    if isinstance(body, (SRecord, SHeader)):
        if isinstance(value_a, (RecordValue, HeaderValue)) and isinstance(
            value_b, (RecordValue, HeaderValue)
        ):
            for name, field_type in body.fields:
                field_a = value_a.get(name)
                field_b = value_b.get(name)
                if field_a is None or field_b is None:
                    continue
                diff = first_difference(
                    lattice, level, field_type, field_a, field_b, f"{path}.{name}"
                )
                if diff is not None:
                    return diff
            return None
        # shape mismatch: observable by construction
        return (path or "<value>", value_a, value_b)
    if isinstance(body, SStack):
        if isinstance(value_a, StackValue) and isinstance(value_b, StackValue):
            for index, (elem_a, elem_b) in enumerate(
                zip(value_a.elements, value_b.elements)
            ):
                diff = first_difference(
                    lattice, level, body.element, elem_a, elem_b, f"{path}[{index}]"
                )
                if diff is not None:
                    return diff
            return None
        return (path or "<value>", value_a, value_b)
    # scalar: observable only when its label is below the observation level
    if lattice.leq(sec_type.label, level):
        if not _scalar_equal(value_a, value_b):
            return (path or "<value>", value_a, value_b)
    return None


def low_project(
    lattice: Lattice, level: Label, sec_type: SecurityType, value: Value
) -> Any:
    """A plain-Python projection of the observable part of ``value``.

    Secret components are replaced by the marker string ``"<secret>"`` so
    two projections compare equal exactly when the values are
    low-equivalent.  Useful for debugging and for table-driven tests.
    """
    body = sec_type.body
    if isinstance(body, (SRecord, SHeader)) and isinstance(
        value, (RecordValue, HeaderValue)
    ):
        return {
            name: low_project(lattice, level, field_type, value.get(name))
            for name, field_type in body.fields
            if value.get(name) is not None
        }
    if isinstance(body, SStack) and isinstance(value, StackValue):
        return [
            low_project(lattice, level, body.element, element)
            for element in value.elements
        ]
    if lattice.leq(sec_type.label, level):
        if isinstance(value, BoolValue):
            return value.value
        if isinstance(value, IntValue):
            return value.value
        return value.describe()
    return "<secret>"
