"""The differential non-interference harness.

For a program and an observation level ``l`` the harness repeatedly:

1. draws a pair of parameter assignments that agree on every below-``l``
   component (Definition 4.1),
2. runs the control block on both under the *same* control plane ``C``,
3. checks that the final parameter values agree on every below-``l``
   component and that both runs produced the same control-flow signal
   (Definition 4.2).

A failure is returned as a :class:`Counterexample`.  Theorem 4.3 says
well-typed programs never produce one; the insecure case-study variants
produce one within a handful of trials.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.ifc.security_types import SecurityType
from repro.lattice.base import Label, Lattice
from repro.lattice.two_point import TwoPointLattice
from repro.ni.equivalence import first_difference
from repro.ni.generators import ValueGenerator, low_equivalent_pair
from repro.ni.labeling import control_security_types
from repro.semantics.control_plane import ControlPlane
from repro.semantics.evaluator import run_control
from repro.semantics.values import Value
from repro.syntax.program import Program


@dataclass
class Counterexample:
    """A witnessed violation of non-interference."""

    trial: int
    parameter: str
    component: str
    inputs_a: Dict[str, Value]
    inputs_b: Dict[str, Value]
    outputs_a: Dict[str, Value]
    outputs_b: Dict[str, Value]
    detail: str = ""

    def __str__(self) -> str:
        return (
            f"trial {self.trial}: observable component {self.parameter}{self.component} "
            f"differs between the two runs ({self.detail})"
        )


@dataclass
class NIResult:
    """Outcome of the differential harness."""

    holds: bool
    trials: int
    level: Label
    counterexample: Optional[Counterexample] = None
    parameter_types: Dict[str, SecurityType] = field(default_factory=dict)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.holds


def run_pair(
    program: Program,
    inputs_a: Dict[str, Value],
    inputs_b: Dict[str, Value],
    *,
    control_name: Optional[str] = None,
    control_plane: Optional[ControlPlane] = None,
) -> Tuple[Dict[str, Value], Dict[str, Value], bool]:
    """Run the control twice; returns both outputs and whether signals agree."""
    run_a = run_control(
        program, inputs_a, control_name=control_name, control_plane=control_plane
    )
    run_b = run_control(
        program, inputs_b, control_name=control_name, control_plane=control_plane
    )
    return run_a.parameters, run_b.parameters, run_a.signal.kind == run_b.signal.kind


def check_non_interference(
    program: Program,
    lattice: Optional[Lattice] = None,
    *,
    level: Optional[Label] = None,
    control_name: Optional[str] = None,
    control_plane: Optional[ControlPlane] = None,
    trials: int = 50,
    seed: int = 0,
    max_bits: int = 4,
) -> NIResult:
    """Empirically test non-interference at observation level ``level``.

    ``level`` defaults to the lattice bottom (the public observer of the
    two-point lattice).  Returns as soon as a counterexample is found.
    ``max_bits`` bounds the magnitude of generated field values; small
    values make table hits and branch flips likely, which is what exposes
    leaks quickly.
    """
    lattice = lattice or TwoPointLattice()
    level = lattice.bottom if level is None else level
    sec_types = control_security_types(program, control_name, lattice)
    generator = ValueGenerator(random.Random(seed), max_bits=max_bits)

    for trial in range(trials):
        inputs_a, inputs_b = low_equivalent_pair(lattice, level, sec_types, generator)
        outputs_a, outputs_b, signals_agree = run_pair(
            program,
            inputs_a,
            inputs_b,
            control_name=control_name,
            control_plane=control_plane,
        )
        if not signals_agree:
            return NIResult(
                False,
                trial + 1,
                level,
                Counterexample(
                    trial,
                    "<signal>",
                    "",
                    inputs_a,
                    inputs_b,
                    outputs_a,
                    outputs_b,
                    detail="the two runs ended with different control-flow signals",
                ),
                sec_types,
            )
        for name, sec_type in sec_types.items():
            diff = first_difference(
                lattice, level, sec_type, outputs_a[name], outputs_b[name]
            )
            if diff is not None:
                component, value_a, value_b = diff
                return NIResult(
                    False,
                    trial + 1,
                    level,
                    Counterexample(
                        trial,
                        name,
                        component,
                        inputs_a,
                        inputs_b,
                        outputs_a,
                        outputs_b,
                        detail=f"{value_a.describe()} vs {value_b.describe()}",
                    ),
                    sec_types,
                )
    return NIResult(True, trials, level, None, sec_types)
