"""Random generation of runtime values and low-equivalent input pairs.

The harness runs a program on many pairs of inputs that agree on their
observable (below-level) components and differ on secrets.  The generator
is seeded so failures are reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.ifc.security_types import (
    SBit,
    SBool,
    SHeader,
    SInt,
    SRecord,
    SStack,
    SecurityType,
)
from repro.lattice.base import Label, Lattice
from repro.semantics.values import (
    BoolValue,
    HeaderValue,
    IntValue,
    RecordValue,
    StackValue,
    UnitValue,
    Value,
)


class ValueGenerator:
    """Draws random values that inhabit a given security type."""

    def __init__(self, rng: Optional[random.Random] = None, max_bits: int = 16) -> None:
        self._rng = rng or random.Random(0)
        self._max_bits = max_bits

    def random_value(self, sec_type: SecurityType) -> Value:
        """A uniformly random value of the given (security) type."""
        body = sec_type.body
        if isinstance(body, SBool):
            return BoolValue(self._rng.random() < 0.5)
        if isinstance(body, SBit):
            width = min(body.width, self._max_bits)
            return IntValue(self._rng.randrange(1 << width), body.width)
        if isinstance(body, SInt):
            return IntValue(self._rng.randrange(1 << 16), None)
        if isinstance(body, SRecord):
            return RecordValue(
                tuple((name, self.random_value(field)) for name, field in body.fields)
            )
        if isinstance(body, SHeader):
            return HeaderValue(
                tuple((name, self.random_value(field)) for name, field in body.fields),
                valid=True,
            )
        if isinstance(body, SStack):
            return StackValue(
                tuple(self.random_value(body.element) for _ in range(body.size))
            )
        return UnitValue()

    def vary_secrets(
        self,
        lattice: Lattice,
        level: Label,
        sec_type: SecurityType,
        value: Value,
    ) -> Value:
        """A copy of ``value`` with every above-``level`` component re-drawn.

        The result is low-equivalent to ``value`` at ``level`` by
        construction.
        """
        body = sec_type.body
        if isinstance(body, (SRecord, SHeader)) and isinstance(
            value, (RecordValue, HeaderValue)
        ):
            new_fields = []
            for name, field_type in body.fields:
                current = value.get(name)
                if current is None:
                    continue
                new_fields.append(
                    (name, self.vary_secrets(lattice, level, field_type, current))
                )
            if isinstance(value, HeaderValue):
                return HeaderValue(tuple(new_fields), value.valid)
            return RecordValue(tuple(new_fields))
        if isinstance(body, SStack) and isinstance(value, StackValue):
            return StackValue(
                tuple(
                    self.vary_secrets(lattice, level, body.element, element)
                    for element in value.elements
                )
            )
        if lattice.leq(sec_type.label, level):
            return value
        return self.random_value(sec_type)


def low_equivalent_pair(
    lattice: Lattice,
    level: Label,
    sec_types: Dict[str, SecurityType],
    generator: Optional[ValueGenerator] = None,
) -> Tuple[Dict[str, Value], Dict[str, Value]]:
    """Two input assignments that agree on observables and differ on secrets."""
    generator = generator or ValueGenerator()
    inputs_a: Dict[str, Value] = {}
    inputs_b: Dict[str, Value] = {}
    for name, sec_type in sec_types.items():
        value_a = generator.random_value(sec_type)
        inputs_a[name] = value_a
        inputs_b[name] = generator.vary_secrets(lattice, level, sec_type, value_a)
    return inputs_a, inputs_b
