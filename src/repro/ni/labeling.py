"""Security-type views of a program's control parameters.

The non-interference harness needs to know, for every control parameter,
which components are observable (label ⊑ observation level) and which are
secret.  That is exactly the security type the IFC checker assigns to the
parameter, so we reuse :class:`repro.ifc.convert.TypeLabeler` over the
program's type declarations.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ifc.context import SecurityTypeDefs
from repro.ifc.convert import TypeLabeler
from repro.ifc.security_types import SecurityType
from repro.lattice.base import Lattice
from repro.lattice.two_point import TwoPointLattice
from repro.syntax import declarations as d
from repro.syntax.program import Program
from repro.syntax.types import AnnotatedType, HeaderType, RecordType


def program_labeler(program: Program, lattice: Optional[Lattice] = None) -> TypeLabeler:
    """A :class:`TypeLabeler` whose Δ contains the program's type declarations."""
    lattice = lattice or TwoPointLattice()
    definitions = SecurityTypeDefs()
    for decl in program.declarations:
        if isinstance(decl, d.HeaderDecl):
            definitions.define(decl.name, AnnotatedType(HeaderType(decl.fields), None))
        elif isinstance(decl, d.StructDecl):
            definitions.define(decl.name, AnnotatedType(RecordType(decl.fields), None))
        elif isinstance(decl, d.TypedefDecl):
            definitions.define(decl.name, decl.ty)
    return TypeLabeler(lattice, definitions)


def control_security_types(
    program: Program,
    control_name: Optional[str] = None,
    lattice: Optional[Lattice] = None,
) -> Dict[str, SecurityType]:
    """Security types of the named control's parameters (default: the only one)."""
    labeler = program_labeler(program, lattice)
    if control_name is None:
        control = program.main_control()
    else:
        control = program.control_named(control_name)
        if control is None:
            raise ValueError(f"program has no control named {control_name!r}")
    return {param.name: labeler.security_type(param.ty) for param in control.params}
