"""Empirical non-interference checking (Definitions 4.1 / 4.2, Theorem 4.3).

The paper proves that well-typed programs are non-interfering.  This
package provides the *testing* counterpart used to validate the
implementation: run a program twice on stores that agree on every
observable (below-``l``) component, and check that the final stores agree
on the observable components too.  A violation is returned as a concrete
counterexample, which is exactly what one expects to find for the insecure
case-study variants and never for the secure ones.
"""

from repro.ni.labeling import control_security_types, program_labeler
from repro.ni.equivalence import low_equivalent, low_project, first_difference
from repro.ni.generators import ValueGenerator, low_equivalent_pair
from repro.ni.harness import (
    Counterexample,
    NIResult,
    check_non_interference,
    run_pair,
)

__all__ = [
    "control_security_types",
    "program_labeler",
    "low_equivalent",
    "low_project",
    "first_difference",
    "ValueGenerator",
    "low_equivalent_pair",
    "Counterexample",
    "NIResult",
    "check_non_interference",
    "run_pair",
]
