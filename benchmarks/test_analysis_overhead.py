"""Analysis overhead: lint pass and pre-solve reduction, with guards.

Two claims, checked structurally (counters, not just wall time, which
shared CI runners make noisy):

* the pre-solve reduction *shrinks the live problem* on the 10k-constraint
  solver-scaling stress system -- it resolves variables and prunes edges
  before Kleene iteration starts, so the scheduler visits strictly fewer
  edges -- while producing the identical assignment;
* running ``--lint`` and ``--presolve`` on the case studies stays within a
  bounded multiple of the plain check (the lint engine re-runs the unified
  traversal a small constant number of times, the reduction is one linear
  topological sweep).

The measured numbers land in ``benchmarks/results/BENCH_analysis.json``
(merged by the ``record_json`` fixture, uploaded by CI).  Runs in the CI
smoke job (``P4BID_SOLVER_BENCH_SMOKE=1``) at reduced size as a hard-fail
regression gate.
"""

from __future__ import annotations

import os
import statistics
import time

import pytest

from repro.analysis import run_lints
from repro.analysis.presolve import presolve_graph
from repro.casestudies import all_case_studies
from repro.frontend.parser import parse_program
from repro.inference import generate_constraints
from repro.inference.graph import PropagationGraph
from repro.lattice.registry import get_lattice
from repro.lattice.two_point import TwoPointLattice
from repro.synth import deep_dataflow_program
from repro.tool.pipeline import check_source

SMOKE = os.environ.get("P4BID_SOLVER_BENCH_SMOKE", "") not in {"", "0"}
DEEP_DEPTH = 400 if SMOKE else 10_500
CONSTRAINT_FLOOR = 0 if SMOKE else 10_000
REPETITIONS = 3 if SMOKE else 9


def _median_ms(fn, repetitions: int = REPETITIONS) -> float:
    samples = []
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1000.0)
    return statistics.median(samples)


@pytest.fixture(scope="module")
def deep_graph():
    lattice = TwoPointLattice()
    generation = generate_constraints(
        parse_program(deep_dataflow_program(DEEP_DEPTH)), lattice
    )
    assert not generation.errors
    assert len(generation.constraints) >= CONSTRAINT_FLOOR
    return lattice, PropagationGraph(lattice, generation.constraints)


def test_presolve_shrinks_the_live_problem(deep_graph, record_json):
    """Hard guard: fewer live edges and variables, identical assignment."""
    lattice, graph = deep_graph
    plain = graph.solve()
    reduced = graph.solve(presolve=True)

    stats = reduced.stats
    assert stats.presolve_resolved_vars > 0, "presolve resolved nothing"
    assert stats.presolve_pruned_edges > 0, "presolve pruned no edges"
    live_edges_plain = plain.stats.edges_visited
    live_edges_reduced = stats.edges_visited
    assert live_edges_reduced < live_edges_plain, (
        "presolve must leave strictly fewer edges to the Kleene iteration"
    )
    assert dict(plain.assignment) == dict(reduced.assignment)
    assert len(plain.conflicts) == len(reduced.conflicts)

    record_json(
        "BENCH_analysis.json",
        {
            "presolve_stress": {
                "constraints": plain.stats.edge_count + plain.stats.check_count,
                "variables": plain.stats.variable_count,
                "resolved_vars": stats.presolve_resolved_vars,
                "pruned_edges": stats.presolve_pruned_edges,
                "edges_visited_plain": live_edges_plain,
                "edges_visited_presolved": live_edges_reduced,
                "presolve_ms": round(stats.presolve_ms, 3),
                "solve_ms_plain": round(plain.stats.solve_ms, 3),
                "solve_ms_presolved": round(stats.solve_ms, 3),
                "smoke": SMOKE,
            }
        },
    )


def test_presolve_overhead_is_bounded(deep_graph, record_json):
    """The reduction sweep must not dominate the solve it accelerates."""
    lattice, graph = deep_graph
    presolve_ms = _median_ms(lambda: presolve_graph(graph))
    solve_ms = _median_ms(lambda: graph.solve())
    # One linear topological sweep vs a full solve: generous 3x + 5ms slack
    # absorbs shared-runner noise without hiding a superlinear regression.
    assert presolve_ms <= 3.0 * solve_ms + 5.0, (
        f"presolve took {presolve_ms:.2f} ms vs {solve_ms:.2f} ms solve"
    )
    record_json(
        "BENCH_analysis.json",
        {
            "presolve_sweep": {
                "presolve_ms": round(presolve_ms, 3),
                "plain_solve_ms": round(solve_ms, 3),
                "smoke": SMOKE,
            }
        },
    )


def test_lint_overhead_is_bounded_on_case_studies(record_json):
    """--lint stays within a constant factor of the plain check."""
    rows = {}
    for case in all_case_studies():
        lattice = get_lattice(case.lattice_name)
        program = parse_program(case.secure_source)
        check_ms = _median_ms(
            lambda: check_source(case.secure_source, case.lattice_name)
        )
        lint_ms = _median_ms(lambda: run_lints(program, lattice))
        # The lint engine replays the unified traversal a small constant
        # number of times (relaxed annotations + one probe per declassify
        # site) and re-solves per local annotation; 25x + 50ms is a loose
        # structural ceiling that still catches accidental quadratics.
        assert lint_ms <= 25.0 * check_ms + 50.0, (
            f"{case.name}: lint {lint_ms:.2f} ms vs check {check_ms:.2f} ms"
        )
        rows[case.name] = {
            "check_ms": round(check_ms, 3),
            "lint_ms": round(lint_ms, 3),
            "ratio": round(lint_ms / check_ms, 2) if check_ms else None,
        }
    record_json("BENCH_analysis.json", {"lint_overhead": rows})


def test_lint_pipeline_overhead(record_json):
    """End-to-end: check_source with lint+presolve vs without, per case."""
    rows = {}
    for case in all_case_studies():
        plain_ms = _median_ms(
            lambda: check_source(case.secure_source, case.lattice_name, infer=True)
        )
        full_ms = _median_ms(
            lambda: check_source(
                case.secure_source,
                case.lattice_name,
                infer=True,
                presolve=True,
                lint=True,
            )
        )
        assert full_ms <= 25.0 * plain_ms + 50.0, (
            f"{case.name}: full {full_ms:.2f} ms vs plain {plain_ms:.2f} ms"
        )
        rows[case.name] = {
            "infer_ms": round(plain_ms, 3),
            "infer_lint_presolve_ms": round(full_ms, 3),
        }
    record_json("BENCH_analysis.json", {"pipeline_overhead": rows})
