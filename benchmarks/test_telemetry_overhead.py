"""The telemetry overhead guard: disabled tracing must cost ~nothing.

``repro.telemetry`` is disabled by default, and the instrumented hot paths
(the SCC propagation loop, the per-rule-site hooks of the flow analysis)
promise to pay at most one ``enabled`` branch when it stays disabled.
Wall-clock comparisons on shared CI runners are noisy, so the **hard**
guarantees here are structural:

* an :class:`ExplodingRecorder` -- disabled, but raising from ``count`` /
  ``observe`` -- survives a full solve and a full ``--infer`` pipeline run,
  proving every metric call sits behind an ``if recorder.enabled`` guard;
* the number of ``span()`` calls under a disabled recorder is *independent
  of problem size*: coarse stage spans only, never one per component, edge,
  or rule site.

A timing comparison (median of interleaved rounds, generous margin) backs
these up: the instrumented-but-disabled :meth:`PropagationGraph.propagate`
must stay close to a direct uninstrumented schedule over the same
components.  The measured ratio lands in ``BENCH_telemetry.json`` either
way, so CI artefacts track the trend even while the assertion stays slack.

Runs in the CI smoke job (``P4BID_SOLVER_BENCH_SMOKE=1``) as a hard-fail
step: an unguarded counter in a hot path fails fast, deterministically.
"""

from __future__ import annotations

import os
import statistics
import time

from repro.frontend.parser import parse_program
from repro.inference import generate_constraints
from repro.inference.graph import PropagationGraph
from repro.lattice.two_point import TwoPointLattice
from repro.synth import deep_dataflow_program
from repro.telemetry import Recorder, TraceRecorder, use_recorder
from repro.tool.pipeline import check_source

SMOKE = os.environ.get("P4BID_SOLVER_BENCH_SMOKE", "") not in {"", "0"}
DEPTH = 300 if SMOKE else 3_000
ROUNDS = 5


class ExplodingRecorder(Recorder):
    """Disabled recorder whose metric hooks raise.

    Any ``count``/``observe`` reaching it means a hot path skipped its
    ``enabled`` guard -- the exact regression this suite exists to catch.
    """

    __slots__ = ("span_calls",)

    def __init__(self) -> None:
        self.span_calls = 0

    def span(self, name, **attrs):
        self.span_calls += 1
        return super().span(name, **attrs)

    def count(self, name, amount=1):
        raise AssertionError(f"count({name!r}) reached a disabled recorder")

    def observe(self, name, value):
        raise AssertionError(f"observe({name!r}) reached a disabled recorder")


def _graph(depth: int):
    lattice = TwoPointLattice()
    generation = generate_constraints(
        parse_program(deep_dataflow_program(depth)), lattice
    )
    assert not generation.errors
    return PropagationGraph(lattice, generation.constraints)


def _solve_spans(depth: int) -> int:
    """How many spans a build+solve opens under a disabled recorder."""
    recorder = ExplodingRecorder()
    with use_recorder(recorder):
        solution = _graph(depth).solve()
    assert solution.ok
    return recorder.span_calls


def test_disabled_solve_span_count_is_size_independent(record_json):
    """Coarse stage spans only: the count must not grow with the system."""
    small = _solve_spans(DEPTH // 10)
    large = _solve_spans(DEPTH)
    assert small == large, (
        f"span calls grew with problem size ({small} -> {large}): "
        "a per-component or per-edge span escaped its enabled guard"
    )
    assert large <= 12
    record_json(
        "BENCH_telemetry.json", {"disabled_solve_span_calls": large, "smoke": SMOKE}
    )


def test_disabled_pipeline_never_calls_metric_hooks():
    """Full ``--infer`` pipeline under an exploding disabled recorder.

    Exercises every instrumented layer at once: rule-site hooks in the
    flow analysis, constraint emission, graph build, propagation, conflict
    checks, and the pipeline's projected solve span.
    """
    source = deep_dataflow_program(DEPTH // 2)
    with use_recorder(ExplodingRecorder()):
        report = check_source(source, infer=True)
    assert report.ok


def test_disabled_propagate_overhead_within_noise(record_json):
    """Instrumented-but-disabled propagate vs a direct component sweep."""
    graph = _graph(DEPTH)

    def run_instrumented() -> float:
        assignment = graph.fresh_assignment()
        stats = graph._new_stats()
        start = time.perf_counter()
        graph.propagate(assignment, stats)
        return time.perf_counter() - start

    def run_reference() -> float:
        assignment = graph.fresh_assignment()
        stats = graph._new_stats()
        start = time.perf_counter()
        for comp_index in range(len(graph.components)):
            graph._run_component(comp_index, assignment, stats)
        return time.perf_counter() - start

    # Warm up, then interleave so drift hits both sides equally.
    run_reference(), run_instrumented()
    reference, instrumented = [], []
    for _ in range(ROUNDS):
        reference.append(run_reference())
        instrumented.append(run_instrumented())
    ref_ms = statistics.median(reference) * 1000.0
    inst_ms = statistics.median(instrumented) * 1000.0
    # Generous margin plus an absolute floor: the disabled path adds one
    # ContextVar read and one branch per propagate() *call*, not per edge.
    assert inst_ms <= ref_ms * 1.5 + 2.0, (
        f"disabled propagate {inst_ms:.2f} ms vs reference {ref_ms:.2f} ms"
    )
    record_json(
        "BENCH_telemetry.json",
        {
            "propagate_disabled_ms": round(inst_ms, 3),
            "propagate_reference_ms": round(ref_ms, 3),
            "disabled_overhead_ratio": round(inst_ms / ref_ms, 3) if ref_ms else None,
        },
    )


def test_enabled_tracing_cost_is_recorded(record_json):
    """Informational: what full tracing costs (no assertion on the ratio)."""
    graph = _graph(DEPTH)

    def timed_solve() -> float:
        start = time.perf_counter()
        solution = graph.solve()
        assert solution.ok
        return (time.perf_counter() - start) * 1000.0

    disabled_ms = statistics.median(timed_solve() for _ in range(ROUNDS))
    recorder = TraceRecorder()
    with use_recorder(recorder):
        enabled_ms = statistics.median(timed_solve() for _ in range(ROUNDS))
    assert recorder.spans_named("solver.solve")  # it really traced
    record_json(
        "BENCH_telemetry.json",
        {
            "solve_disabled_ms": round(disabled_ms, 3),
            "solve_traced_ms": round(enabled_ms, 3),
            "traced_overhead_ratio": (
                round(enabled_ms / disabled_ms, 3) if disabled_ms else None
            ),
        },
    )
