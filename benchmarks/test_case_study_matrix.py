"""The case-study accept/reject matrix of Section 5.

Not a numbered table in the paper, but its central qualitative claim: P4BID
rejects every insecure variant (flagging the leak the text describes) and
certifies every secure variant.  The benchmark times the full pipeline on
each variant and regenerates the matrix as a text artefact.
"""

from __future__ import annotations

import pytest

from repro.casestudies import all_case_studies
from repro.tool.pipeline import check_source

CASES = all_case_studies()


@pytest.mark.parametrize("case", CASES, ids=[c.name for c in CASES])
@pytest.mark.parametrize("variant", ["secure", "insecure"])
def test_check_case_study(benchmark, case, variant):
    source = case.secure_source if variant == "secure" else case.insecure_source
    report = benchmark(check_source, source, case.lattice_name)
    if variant == "secure":
        assert report.ok
    else:
        assert not report.ok
        assert report.ifc_diagnostics


def test_case_study_matrix(benchmark, record_table):
    lines = [
        "Case-study matrix (Section 5): verdict of P4BID per program variant",
        f"{'program':<10} {'section':<8} {'lattice':<10} {'secure':<10} "
        f"{'insecure':<10} {'violation kinds (insecure)'}",
    ]

    def check_all():
        return [
            (
                case,
                check_source(case.secure_source, case.lattice_name),
                check_source(case.insecure_source, case.lattice_name),
            )
            for case in CASES
        ]

    for case, secure, insecure in benchmark.pedantic(check_all, rounds=1, iterations=1):
        kinds = sorted({d.kind.value for d in insecure.ifc_diagnostics})
        lines.append(
            f"{case.name:<10} {case.section:<8} {case.lattice_name:<10} "
            f"{'accepted' if secure.ok else 'REJECTED':<10} "
            f"{'rejected' if not insecure.ok else 'ACCEPTED':<10} {', '.join(kinds)}"
        )
        assert secure.ok, case.name
        assert not insecure.ok, case.name
        for expected in case.expected_violations:
            assert expected.value in kinds, (case.name, expected.value, kinds)
    record_table("case_study_matrix.txt", "\n".join(lines))


def test_case_study_bench_artifact(record_json):
    """``BENCH_casestudies.json``: per-case verdicts, phase timings (ms),
    and constraint counts, machine-readable for CI artefact diffing.

    The secure variant is run with ``--infer`` so the artefact also records
    the constraint-system size and the ``solve`` sub-phase duration.
    """
    payload = {}
    for case in CASES:
        secure = check_source(case.secure_source, case.lattice_name, infer=True)
        insecure = check_source(case.insecure_source, case.lattice_name)
        assert secure.ok, case.name
        assert not insecure.ok, case.name
        inference = secure.inference_result
        timing = secure.timing
        payload[case.name] = {
            "section": case.section,
            "lattice": case.lattice_name,
            "secure_accepted": secure.ok,
            "insecure_rejected": not insecure.ok,
            "violation_kinds": sorted(
                {d.kind.value for d in insecure.ifc_diagnostics}
            ),
            "constraints": inference.constraint_count,
            "label_variables": inference.variable_count,
            "timing_ms": {
                "parse": round(timing.parse_ms, 3),
                "core": round(timing.core_ms, 3),
                "infer": round(timing.infer_ms, 3),
                "solve": round(timing.solve_ms, 3),
                "ifc": round(timing.ifc_ms, 3),
                "total": round(timing.total_ms, 3),
            },
        }
    record_json("BENCH_casestudies.json", payload)
