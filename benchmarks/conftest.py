"""Shared helpers for the benchmark suite.

Every benchmark writes the human-readable table or series it regenerates to
``benchmarks/results/`` (and echoes it through the ``record_table``
fixture), so `pytest benchmarks/ --benchmark-only` leaves behind the same
artefacts the paper reports -- Table 1 and the case-study matrix -- next to
pytest-benchmark's own timing table.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Write a named text artefact and echo it to the terminal."""

    def write(name: str, text: str) -> Path:
        path = results_dir / name
        path.write_text(text, encoding="utf-8")
        print(f"\n--- {name} ---\n{text}")
        return path

    return write


@pytest.fixture
def record_json(results_dir):
    """Merge keys into a machine-readable JSON artefact (``BENCH_*.json``).

    Each test contributes its own top-level keys; merging (rather than
    overwriting) lets several tests build one artefact regardless of which
    subset of them ran.
    """

    def write(name: str, payload: dict) -> Path:
        path = results_dir / name
        merged = {}
        if path.exists():
            try:
                merged = json.loads(path.read_text(encoding="utf-8"))
            except ValueError:
                merged = {}
        merged.update(payload)
        path.write_text(
            json.dumps(merged, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return path

    return write
