"""Workspace incrementality: edit -> re-check latency vs a cold check.

The session workspace's whole reason to exist is that re-checking after an
edit costs the *edit's* cone, not the program.  This benchmark pins that
claim on a 10,000-constraint system (100 shards x depth 100 of
:func:`repro.synth.sharded_dataflow_program`) and **hard-fails** if the
warm path is not strictly cheaper than the cold path -- both in wall time
(minimum over repetitions, so shared-runner noise cannot flip the verdict)
and in the noise-free work counters (edges visited, units re-walked).

Measured end to end, the honest way: the warm number includes re-parsing
the edited source and the structural diff; the cold number is a fresh
workspace opening and checking the same source.  Results land in
``benchmarks/results/BENCH_workspace.json``.

Set ``P4BID_SOLVER_BENCH_SMOKE=1`` to run the same assertions at reduced
size (the CI smoke job does); the 10k-constraint floor is only asserted at
full size.
"""

from __future__ import annotations

import os
import time

from repro.synth import sharded_dataflow_program
from repro.workspace import Workspace

SMOKE = os.environ.get("P4BID_SOLVER_BENCH_SMOKE", "") not in {"", "0"}
SHARDS = 10 if SMOKE else 100
#: 100 shards x depth 101 = 10,100 constraints -- still >= 10k after the
#: benchmark edit deletes the flipped seed's (now-trivial) constraint.
DEPTH = 10 if SMOKE else 101
CONSTRAINT_FLOOR = 0 if SMOKE else 10_000
REPETITIONS = 2 if SMOKE else 3


def _edit_flipping(source: str, shard: int) -> str:
    edited = source.replace(
        f"header shard{shard}_t {{\n    <bit<8>, high> seed;",
        f"header shard{shard}_t {{\n    <bit<8>, low> seed;",
    )
    assert edited != source
    return edited


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, (time.perf_counter() - start) * 1000.0


def test_warm_recheck_strictly_cheaper_than_cold(record_json):
    source = sharded_dataflow_program(SHARDS, depth=DEPTH)
    target = SHARDS // 2

    warm_ms, cold_ms = [], []
    warm_report = cold_report = None
    for _ in range(REPETITIONS):
        edited = _edit_flipping(source, target)

        workspace = Workspace()
        assert workspace.open(source, filename="<input>")
        workspace.check(infer=True)  # converge the session before the edit

        def warm_recheck():
            assert workspace.edit(edited)
            return workspace.check(infer=True)

        warm_report, elapsed = _timed(warm_recheck)
        warm_ms.append(elapsed)
        regen = workspace.stats()["regen"]

        fresh = Workspace()

        def cold_check():
            assert fresh.open(edited, filename="<input>")
            return fresh.check(infer=True)

        cold_report, elapsed = _timed(cold_check)
        cold_ms.append(elapsed)

    constraints = cold_report.inference_result.constraint_count
    assert constraints >= CONSTRAINT_FLOOR

    # Same answers, warm and cold -- the latency comparison is meaningless
    # otherwise.
    assert (
        warm_report.inference_result.assignment_by_hint()
        == cold_report.inference_result.assignment_by_hint()
    )

    warm_stats = warm_report.inference_result.solution.stats
    cold_stats = cold_report.inference_result.solution.stats

    # The noise-free incrementality claims: a one-header edit re-walked
    # three units out of 3*SHARDS and revisited a sliver of the edges.
    assert regen["units_rewalked"] == 3
    assert regen["units_reused"] == 3 * SHARDS - 3
    assert warm_stats.edges_visited < cold_stats.edges_visited

    # The headline hard-fail: incremental re-check strictly cheaper than a
    # cold check of the same revision.
    best_warm, best_cold = min(warm_ms), min(cold_ms)
    assert best_warm < best_cold, (
        f"warm re-check ({best_warm:.1f} ms) is not cheaper than a cold "
        f"check ({best_cold:.1f} ms) at {constraints} constraints"
    )

    record_json(
        "BENCH_workspace.json",
        {
            "incremental_recheck": {
                "smoke": SMOKE,
                "shards": SHARDS,
                "depth": DEPTH,
                "constraints": constraints,
                "repetitions": REPETITIONS,
                "warm_ms": round(best_warm, 3),
                "cold_ms": round(best_cold, 3),
                "speedup": round(best_cold / best_warm, 3),
                "units_rewalked": regen["units_rewalked"],
                "units_reused": regen["units_reused"],
                "warm_edges_visited": warm_stats.edges_visited,
                "cold_edges_visited": cold_stats.edges_visited,
            }
        },
    )


def test_pin_resolve_latency(record_json):
    """Pinning one slot over a warm 10k-constraint session re-solves only
    the pin's cone; record the latency next to the cold solve for scale."""
    source = sharded_dataflow_program(SHARDS, depth=DEPTH)
    workspace = Workspace()
    assert workspace.open(source, filename="<input>")
    report = workspace.check(infer=True)
    hint = next(iter(report.inference_result.assignment_by_hint()))

    _, pin_ms = _timed(lambda: workspace.pin(hint, "high"))
    pinned, infer_ms = _timed(workspace.infer)
    assert workspace.lattice.format_label(pinned.assignment_by_hint()[hint]) == "high"

    record_json(
        "BENCH_workspace.json",
        {
            "pin_resolve": {
                "smoke": SMOKE,
                "constraints": report.inference_result.constraint_count,
                "pin_ms": round(pin_ms, 3),
                "infer_after_pin_ms": round(infer_ms, 3),
            }
        },
    )
