"""Inference overhead vs. plain IFC checking, per case study (Table 1 style).

For each Table 1 program this measures the annotated P4BID check (parse +
core + IFC) against the inference pipeline run on the *body-stripped*
variant (parse + core + infer + IFC-on-elaborated).  The inference column
pays for constraint generation, solving, and elaborating plus a second
full security check, so the shape to expect is a modest constant factor --
the constraint systems of the paper's programs are tiny (tens of
constraints) and the solver is linear in practice.

The regenerated table is written to ``benchmarks/results/``.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.casestudies import table1_case_studies
from repro.casestudies.base import strip_body_annotations
from repro.frontend.parser import parse_program
from repro.inference import generate_constraints
from repro.lattice.registry import get_lattice
from repro.tool.pipeline import check_source

CASES = {case.name: case for case in table1_case_studies()}
ROW_LABELS = [
    ("D2R", "d2r"),
    ("App", "app"),
    ("Lattice", "lattice"),
    ("Topology", "topology"),
    ("Cache", "cache"),
]


def _check_annotated(case):
    return check_source(case.secure_source, case.lattice_name)


def _check_inferred(case):
    return check_source(
        strip_body_annotations(case.secure_source), case.lattice_name, infer=True
    )


def _measure_ms(fn, case, repetitions: int = 15) -> float:
    samples = []
    for _ in range(repetitions):
        start = time.perf_counter()
        fn(case)
        samples.append((time.perf_counter() - start) * 1000.0)
    return statistics.median(samples)


@pytest.mark.parametrize("row,name", ROW_LABELS, ids=[r for r, _ in ROW_LABELS])
def test_annotated_check(benchmark, row, name):
    """Baseline column: the fully annotated P4BID check."""
    report = benchmark(_check_annotated, CASES[name])
    assert report.ok


@pytest.mark.parametrize("row,name", ROW_LABELS, ids=[r for r, _ in ROW_LABELS])
def test_inferred_check(benchmark, row, name):
    """Inference column: body-stripped program, infer + re-verify."""
    report = benchmark(_check_inferred, CASES[name])
    assert report.ok
    assert report.inference_result is not None and report.inference_result.ok


def test_inference_overhead_table(benchmark, record_table):
    """Regenerate the per-program inference-overhead table."""

    def measure_all_rows():
        measured = []
        for label, name in ROW_LABELS:
            case = CASES[name]
            annotated_ms = _measure_ms(_check_annotated, case)
            inferred_ms = _measure_ms(_check_inferred, case)
            sample = _check_inferred(case)
            inference = sample.inference_result
            measured.append(
                (
                    label,
                    annotated_ms,
                    inferred_ms,
                    sample.timing.infer_ms,
                    inference.variable_count,
                    inference.constraint_count,
                )
            )
        return measured

    rows = benchmark.pedantic(measure_all_rows, rounds=1, iterations=1)

    average_annotated = statistics.mean(r[1] for r in rows)
    average_inferred = statistics.mean(r[2] for r in rows)
    overhead_pct = (
        100.0 * (average_inferred - average_annotated) / average_annotated
    )

    lines = [
        "Inference overhead: annotated check vs body-stripped infer+recheck (ms)",
        f"{'Program':<10} {'Annotated':>12} {'Inferred':>12} {'infer phase':>12} "
        f"{'vars':>6} {'constraints':>12}",
    ]
    for label, annotated_ms, inferred_ms, infer_ms, n_vars, n_constraints in rows:
        lines.append(
            f"{label:<10} {annotated_ms:>12.2f} {inferred_ms:>12.2f} "
            f"{infer_ms:>12.2f} {n_vars:>6d} {n_constraints:>12d}"
        )
    lines.append(
        f"{'Average':<10} {average_annotated:>12.2f} {average_inferred:>12.2f}"
    )
    lines.append(f"Average overhead of label inference: {overhead_pct:.1f}%")
    lines.append(
        "The inference column runs constraint generation + solving + elaboration "
        "and then re-verifies the elaborated program with the stock checker, so "
        "its floor is one extra IFC pass; the solver itself is negligible at "
        "case-study scale."
    )
    record_table("inference_overhead.txt", "\n".join(lines))

    # Shape assertions (loose, as in the Table 1 benchmark): inference stays
    # a modest constant factor over the plain annotated check.
    for label, annotated_ms, inferred_ms, *_ in rows:
        assert inferred_ms <= annotated_ms * 5.0, (
            f"{label}: inference should be a modest overhead, got "
            f"{annotated_ms:.2f} -> {inferred_ms:.2f} ms"
        )


def test_unified_traversal_phase_guard(benchmark, record_table):
    """Guard the shared Figure 5–7 traversal's two instantiations.

    Since the ``repro.flow`` refactor the IFC check phase and the
    constraint-generation phase run the *same* ``FlowAnalysis`` under
    different label algebras, so neither may cost more than a small factor
    of the other (the concrete side walks function bodies twice, the
    symbolic side builds terms).  Phase times come from the pipeline's own
    ``PhaseTiming`` (``ifc_ms`` / ``infer_ms``); the generate phase is also
    timed in isolation.  Bounds are mutual and carry a generous absolute
    floor so shared-runner noise on sub-millisecond programs cannot trip
    them -- what they catch is a *structural* regression, e.g. a traversal
    that starts re-walking bodies quadratically under one algebra only.
    """

    from repro.ifc import check_ifc

    def measure_phases():
        measured = []
        for label, name in ROW_LABELS:
            case = CASES[name]
            report = _check_annotated(case)
            assert report.ok
            lattice = get_lattice(case.lattice_name)
            annotated = parse_program(case.secure_source)
            stripped = parse_program(strip_body_annotations(case.secure_source))

            def check(_case, _program=annotated, _lattice=lattice):
                return check_ifc(_program, _lattice)

            def generate(_case, _program=stripped, _lattice=lattice):
                return generate_constraints(_program, _lattice)

            check_ms = _measure_ms(check, case)
            generate_ms = _measure_ms(generate, case)
            inferred = _check_inferred(case)
            measured.append(
                (label, report.timing.ifc_ms, check_ms, generate_ms,
                 inferred.timing.infer_ms)
            )
        return measured

    rows = benchmark.pedantic(measure_phases, rounds=1, iterations=1)

    lines = [
        "Unified traversal: concrete check phase vs symbolic generate phase (ms)",
        f"{'Program':<10} {'ifc phase':>12} {'check (med)':>12} "
        f"{'generate':>12} {'infer phase':>12}",
    ]
    for label, ifc_ms, check_ms, generate_ms, infer_ms in rows:
        lines.append(
            f"{label:<10} {ifc_ms:>12.2f} {check_ms:>12.2f} "
            f"{generate_ms:>12.2f} {infer_ms:>12.2f}"
        )
    lines.append(
        "Both phases drive the same repro.flow.FlowAnalysis (ConcreteAlgebra "
        "vs SymbolicAlgebra); the mutual 5x-or-25ms bound pins that the "
        "unification keeps the two instantiations within noise of each other."
    )
    record_table("unified_traversal_phases.txt", "\n".join(lines))

    for label, _ifc_ms, check_ms, generate_ms, _infer_ms in rows:
        assert generate_ms <= max(check_ms * 5.0, 25.0), (
            f"{label}: generate phase regressed vs check phase "
            f"({check_ms:.2f} -> {generate_ms:.2f} ms)"
        )
        assert check_ms <= max(generate_ms * 5.0, 25.0), (
            f"{label}: check phase regressed vs generate phase "
            f"({generate_ms:.2f} -> {check_ms:.2f} ms)"
        )
