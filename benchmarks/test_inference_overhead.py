"""Inference overhead vs. plain IFC checking, per case study (Table 1 style).

For each Table 1 program this measures the annotated P4BID check (parse +
core + IFC) against the inference pipeline run on the *body-stripped*
variant (parse + core + infer + IFC-on-elaborated).  The inference column
pays for constraint generation, solving, and elaborating plus a second
full security check, so the shape to expect is a modest constant factor --
the constraint systems of the paper's programs are tiny (tens of
constraints) and the solver is linear in practice.

The regenerated table is written to ``benchmarks/results/``.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.casestudies import table1_case_studies
from repro.casestudies.base import strip_body_annotations
from repro.tool.pipeline import check_source

CASES = {case.name: case for case in table1_case_studies()}
ROW_LABELS = [
    ("D2R", "d2r"),
    ("App", "app"),
    ("Lattice", "lattice"),
    ("Topology", "topology"),
    ("Cache", "cache"),
]


def _check_annotated(case):
    return check_source(case.secure_source, case.lattice_name)


def _check_inferred(case):
    return check_source(
        strip_body_annotations(case.secure_source), case.lattice_name, infer=True
    )


def _measure_ms(fn, case, repetitions: int = 15) -> float:
    samples = []
    for _ in range(repetitions):
        start = time.perf_counter()
        fn(case)
        samples.append((time.perf_counter() - start) * 1000.0)
    return statistics.median(samples)


@pytest.mark.parametrize("row,name", ROW_LABELS, ids=[r for r, _ in ROW_LABELS])
def test_annotated_check(benchmark, row, name):
    """Baseline column: the fully annotated P4BID check."""
    report = benchmark(_check_annotated, CASES[name])
    assert report.ok


@pytest.mark.parametrize("row,name", ROW_LABELS, ids=[r for r, _ in ROW_LABELS])
def test_inferred_check(benchmark, row, name):
    """Inference column: body-stripped program, infer + re-verify."""
    report = benchmark(_check_inferred, CASES[name])
    assert report.ok
    assert report.inference_result is not None and report.inference_result.ok


def test_inference_overhead_table(benchmark, record_table):
    """Regenerate the per-program inference-overhead table."""

    def measure_all_rows():
        measured = []
        for label, name in ROW_LABELS:
            case = CASES[name]
            annotated_ms = _measure_ms(_check_annotated, case)
            inferred_ms = _measure_ms(_check_inferred, case)
            sample = _check_inferred(case)
            inference = sample.inference_result
            measured.append(
                (
                    label,
                    annotated_ms,
                    inferred_ms,
                    sample.timing.infer_ms,
                    inference.variable_count,
                    inference.constraint_count,
                )
            )
        return measured

    rows = benchmark.pedantic(measure_all_rows, rounds=1, iterations=1)

    average_annotated = statistics.mean(r[1] for r in rows)
    average_inferred = statistics.mean(r[2] for r in rows)
    overhead_pct = (
        100.0 * (average_inferred - average_annotated) / average_annotated
    )

    lines = [
        "Inference overhead: annotated check vs body-stripped infer+recheck (ms)",
        f"{'Program':<10} {'Annotated':>12} {'Inferred':>12} {'infer phase':>12} "
        f"{'vars':>6} {'constraints':>12}",
    ]
    for label, annotated_ms, inferred_ms, infer_ms, n_vars, n_constraints in rows:
        lines.append(
            f"{label:<10} {annotated_ms:>12.2f} {inferred_ms:>12.2f} "
            f"{infer_ms:>12.2f} {n_vars:>6d} {n_constraints:>12d}"
        )
    lines.append(
        f"{'Average':<10} {average_annotated:>12.2f} {average_inferred:>12.2f}"
    )
    lines.append(f"Average overhead of label inference: {overhead_pct:.1f}%")
    lines.append(
        "The inference column runs constraint generation + solving + elaboration "
        "and then re-verifies the elaborated program with the stock checker, so "
        "its floor is one extra IFC pass; the solver itself is negligible at "
        "case-study scale."
    )
    record_table("inference_overhead.txt", "\n".join(lines))

    # Shape assertions (loose, as in the Table 1 benchmark): inference stays
    # a modest constant factor over the plain annotated check.
    for label, annotated_ms, inferred_ms, *_ in rows:
        assert inferred_ms <= annotated_ms * 5.0, (
            f"{label}: inference should be a modest overhead, got "
            f"{annotated_ms:.2f} -> {inferred_ms:.2f} ms"
        )
