"""Ablation B (ours): checker cost versus lattice height.

The typing rules only ever compare, join, and meet labels, so the cost of
checking a fixed program should grow slowly with the size of the lattice
(our finite lattices precompute join/meet tables, so lookups are O(1); the
quadratic precomputation happens once per lattice construction).  The
benchmark separates the two costs and reports both series.
"""

from __future__ import annotations

import time

import pytest

from repro.frontend.parser import parse_program
from repro.ifc import check_ifc
from repro.lattice import ChainLattice
from repro.synth import chain_pipeline_program

HEIGHTS = [2, 4, 8, 16, 32]


@pytest.mark.parametrize("height", HEIGHTS)
def test_checking_under_taller_chains(benchmark, height):
    lattice = ChainLattice.of_height(height)
    program = parse_program(chain_pipeline_program(lattice.levels, rounds=4))
    result = benchmark(check_ifc, program, lattice)
    assert result.ok


@pytest.mark.parametrize("height", HEIGHTS)
def test_lattice_construction(benchmark, height):
    lattice = benchmark(ChainLattice.of_height, height)
    assert len(list(lattice.labels())) == height


def _median(fn, repetitions: int = 7) -> float:
    samples = []
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1000.0)
    samples.sort()
    return samples[len(samples) // 2]


def test_lattice_size_series(benchmark, record_table):
    lines = [
        "Ablation B: IFC checking time vs lattice height (chain lattices)",
        f"{'height':>8} {'construct (ms)':>16} {'check height-matched program (ms)':>36}",
    ]

    def measure_series():
        measured = {}
        for height in HEIGHTS:
            lattice = ChainLattice.of_height(height)
            matched_program = parse_program(
                chain_pipeline_program(lattice.levels, rounds=4)
            )
            construct_ms = _median(lambda h=height: ChainLattice.of_height(h))
            matched_ms = _median(lambda: check_ifc(matched_program, lattice))
            measured[height] = (construct_ms, matched_ms)
        return measured

    series = benchmark.pedantic(measure_series, rounds=1, iterations=1)
    check_times = {}
    for height in HEIGHTS:
        construct_ms, matched_ms = series[height]
        check_times[height] = matched_ms
        lines.append(f"{height:>8} {construct_ms:>16.2f} {matched_ms:>36.2f}")
    record_table("ablation_lattice_size.txt", "\n".join(lines))

    # Shape: label operations are table lookups, so a 16x taller lattice on a
    # proportionally larger program must stay well under quadratic blow-up.
    assert check_times[32] < check_times[2] * 100
