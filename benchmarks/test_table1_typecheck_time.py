"""Table 1: typechecking time for the five case-study programs.

The paper reports, per program, the time p4c takes on the unannotated
program and the time P4BID takes on the annotated (secure) program, plus
the average; the headline result is a small constant overhead (~5 % / 30 ms
on the authors' machine).

Here the "p4c baseline" is our parse + ordinary Core P4 type check, and the
"P4BID" column additionally runs the IFC checker.  Absolute numbers are not
comparable to the paper (Python vs C++), but the *shape* -- each annotated
check costs only a modest constant factor more than the unannotated check,
for every row and on average -- is what the benchmark regenerates.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.casestudies import table1_case_studies
from repro.tool.pipeline import check_source

CASES = {case.name: case for case in table1_case_studies()}
#: Paper row labels, mapped to our registry names.
ROW_LABELS = [
    ("D2R", "d2r"),
    ("App", "app"),
    ("Lattice", "lattice"),
    ("Topology", "topology"),
    ("Cache", "cache"),
]


def _check_unannotated(case):
    return check_source(case.unannotated_source, case.lattice_name, include_ifc=False)


def _check_annotated(case):
    return check_source(case.secure_source, case.lattice_name, include_ifc=True)


@pytest.mark.parametrize("row,name", ROW_LABELS, ids=[r for r, _ in ROW_LABELS])
def test_unannotated_baseline(benchmark, row, name):
    """Column 'Unannotated, p4c': parse + ordinary type check."""
    case = CASES[name]
    report = benchmark(_check_unannotated, case)
    assert report.ok


@pytest.mark.parametrize("row,name", ROW_LABELS, ids=[r for r, _ in ROW_LABELS])
def test_annotated_p4bid(benchmark, row, name):
    """Column 'Annotated, P4BID': parse + ordinary + IFC type check."""
    case = CASES[name]
    report = benchmark(_check_annotated, case)
    assert report.ok


def _measure_ms(fn, case, repetitions: int = 15) -> float:
    """Median wall-clock milliseconds of ``fn(case)`` over ``repetitions``."""
    samples = []
    for _ in range(repetitions):
        start = time.perf_counter()
        fn(case)
        samples.append((time.perf_counter() - start) * 1000.0)
    return statistics.median(samples)


def test_table1_rows(benchmark, record_table):
    """Regenerate Table 1 (our numbers) and check its qualitative shape."""

    def measure_all_rows():
        measured = []
        for label, name in ROW_LABELS:
            case = CASES[name]
            unannotated_ms = _measure_ms(_check_unannotated, case)
            annotated_ms = _measure_ms(_check_annotated, case)
            measured.append((label, unannotated_ms, annotated_ms))
        return measured

    rows = benchmark.pedantic(measure_all_rows, rounds=1, iterations=1)

    average_unannotated = statistics.mean(r[1] for r in rows)
    average_annotated = statistics.mean(r[2] for r in rows)
    overhead_pct = 100.0 * (average_annotated - average_unannotated) / average_unannotated

    lines = [
        "Table 1: typechecking time in milliseconds (this reproduction)",
        f"{'Program':<10} {'Unannotated (core)':>20} {'Annotated (P4BID)':>20}",
    ]
    for label, unannotated_ms, annotated_ms in rows:
        lines.append(f"{label:<10} {unannotated_ms:>20.2f} {annotated_ms:>20.2f}")
    lines.append(
        f"{'Average':<10} {average_unannotated:>20.2f} {average_annotated:>20.2f}"
    )
    lines.append(f"Average overhead of the security pass: {overhead_pct:.1f}%")
    lines.append(
        "Paper (Table 1): 543 ms vs 573 ms on average, ~5% overhead; the shape to "
        "match is a small constant overhead per row, not the absolute numbers."
    )
    record_table("table1_typecheck_time.txt", "\n".join(lines))

    # Shape assertions: the security pass stays a modest constant factor on
    # every row (the paper's qualitative claim).  Per-row lower bounds are
    # deliberately loose -- parsing dominates both columns and its timing
    # noise can make a single annotated run come out marginally faster.
    for label, unannotated_ms, annotated_ms in rows:
        assert annotated_ms <= unannotated_ms * 3.0, (
            f"{label}: security checking should be a modest overhead, got "
            f"{unannotated_ms:.2f} -> {annotated_ms:.2f} ms"
        )
    assert average_annotated >= average_unannotated * 0.8
    assert -25.0 <= overhead_pct <= 150.0
