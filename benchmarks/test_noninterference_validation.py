"""Empirical validation of Theorem 4.3 (soundness), run as a benchmark.

For every case study the differential harness is run on the secure variant
(the theorem says no counterexample can exist) and, where the secret enters
through the packet, on the insecure variant (a counterexample should be
found quickly).  The benchmark reports how many trials each verdict took,
which doubles as a sanity check that the harness is doing real work.
"""

from __future__ import annotations

import pytest

from repro.casestudies import all_case_studies, get_case_study
from repro.frontend.parser import parse_program
from repro.lattice.registry import get_lattice
from repro.ni import check_non_interference

CASES = all_case_studies()
OBSERVABLE = [case.name for case in CASES if case.leak_observable_differentially]


def _harness(case, source, trials, seed=13):
    program = parse_program(source)
    lattice = get_lattice(case.lattice_name)
    control_name = case.control_names[0] if case.control_names else None
    level = (
        lattice.parse_label(case.ni_observation_level)
        if case.ni_observation_level is not None
        else None
    )
    return check_non_interference(
        program,
        lattice,
        level=level,
        control_name=control_name,
        control_plane=case.control_plane(),
        trials=trials,
        seed=seed,
    )


@pytest.mark.parametrize("name", [case.name for case in CASES])
def test_secure_variants_hold(benchmark, name):
    case = get_case_study(name)
    result = benchmark(_harness, case, case.secure_source, 30)
    assert result.holds, str(result.counterexample)


@pytest.mark.parametrize("name", OBSERVABLE)
def test_insecure_variants_violated(benchmark, name):
    case = get_case_study(name)
    result = benchmark(_harness, case, case.insecure_source, 300)
    assert not result.holds


def test_ni_validation_table(benchmark, record_table):
    lines = [
        "Empirical non-interference validation (Theorem 4.3)",
        f"{'program':<10} {'variant':<10} {'verdict':<12} {'trials':>7}  detail",
    ]

    def run_all():
        return [
            (case, _harness(case, case.secure_source, 30), _harness(case, case.insecure_source, 300))
            for case in CASES
        ]

    for case, secure, insecure in benchmark.pedantic(run_all, rounds=1, iterations=1):
        lines.append(
            f"{case.name:<10} {'secure':<10} "
            f"{'holds' if secure.holds else 'VIOLATED':<12} {secure.trials:>7}"
        )
        assert secure.holds, (case.name, str(secure.counterexample))
        detail = "" if insecure.holds else str(insecure.counterexample)
        lines.append(
            f"{case.name:<10} {'insecure':<10} "
            f"{'holds' if insecure.holds else 'violated':<12} {insecure.trials:>7}  {detail}"
        )
        if case.leak_observable_differentially:
            assert not insecure.holds, case.name
        elif insecure.holds:
            lines.append(
                f"{'':<10} {'':<10} (leak lives in the control plane / needs directed "
                "inputs; caught statically, see notes)"
            )
    record_table("noninterference_validation.txt", "\n".join(lines))
