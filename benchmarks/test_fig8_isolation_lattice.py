"""Figure 8: the diamond lattice and the isolation property it enforces.

Figure 8b is a lattice diagram rather than a measurement, so the benchmark
regenerates its content operationally: it validates the lattice laws,
checks the two tenants' control blocks under their respective pc labels
(``Γ, Δ ⊢_A update_by_alice`` and ``Γ, Δ ⊢_B update_by_bob``), and records
which flows between the four levels are permitted -- i.e. the Hasse diagram
of Figure 8b as an adjacency table.
"""

from __future__ import annotations

import pytest

from repro.casestudies import get_case_study
from repro.lattice import DiamondLattice
from repro.tool.pipeline import check_source

CASE = get_case_study("lattice")
LATTICE = DiamondLattice()


def test_lattice_laws(benchmark):
    benchmark(LATTICE.validate)


@pytest.mark.parametrize("variant", ["secure", "insecure"])
def test_isolation_checking(benchmark, variant):
    source = CASE.secure_source if variant == "secure" else CASE.insecure_source
    report = benchmark(check_source, source, "diamond")
    assert report.ok is (variant == "secure")


def test_fig8_flow_table(benchmark, record_table):
    labels = list(LATTICE.labels())
    lines = [
        "Figure 8b: permitted flows in the diamond lattice (row may flow to column)",
        "      " + "".join(f"{str(c):>6}" for c in labels),
    ]
    for row in labels:
        cells = "".join(
            f"{'yes' if LATTICE.leq(row, col) else '-':>6}" for col in labels
        )
        lines.append(f"{str(row):>6}{cells}")

    def check_both():
        return (
            check_source(CASE.secure_source, "diamond"),
            check_source(CASE.insecure_source, "diamond"),
        )

    report, insecure = benchmark.pedantic(check_both, rounds=1, iterations=1)
    lines.append("")
    lines.append(
        "Listing 7 (secure tenants): "
        + ("accepted" if report.ok else "REJECTED (unexpected)")
    )
    lines.append(
        "Listing 6 (Alice touches Bob's field, keys on telemetry): rejected with "
        + ", ".join(sorted({d.kind.value for d in insecure.ifc_diagnostics}))
    )
    record_table("fig8_isolation_lattice.txt", "\n".join(lines))

    # Shape assertions mirroring Figure 8b.
    assert LATTICE.leq("bot", "A") and LATTICE.leq("bot", "B")
    assert LATTICE.leq("A", "top") and LATTICE.leq("B", "top")
    assert not LATTICE.leq("A", "B") and not LATTICE.leq("B", "A")
    assert report.ok and not insecure.ok
