"""Sustained compliance throughput: packed vs graph decisions at scale.

The compliance workload's claim is the paper's claim transplanted: label
checking is cheap enough to run inline per request, *at policy scale*.
This benchmark pins it:

* the lattice is ``policy-120-96-8`` — **216 powerset principals** plus
  an 8-class retention chain (the ``>= 200`` principals the roadmap item
  asks for);
* the workload is the deterministic scenario generator's stream —
  access / cross-purpose reuse / retention-expiry requests with
  mid-stream consent revocations — replayed identically on the packed
  and the graph backend;
* **hard failures**: the two decision logs must be byte-identical, and
  the packed backend must beat the graph backend on checks/sec (best of
  ``REPETITIONS`` replays each, so shared-runner noise cannot flip the
  verdict spuriously).

Results — checks/sec plus p50/p95/p99 decision latency for both
backends — land in ``benchmarks/results/BENCH_policy.json``.

Set ``P4BID_SOLVER_BENCH_SMOKE=1`` (the CI ``policy-smoke`` job does) to
replay a shorter stream; the lattice keeps its 216 principals even in
smoke runs because the principal count *is* the claim.
"""

from __future__ import annotations

import os

from repro.lattice.registry import get_lattice
from repro.policy import PolicyEngine, replay
from repro.synth import policy_traffic, scenario_universe

SMOKE = os.environ.get("P4BID_SOLVER_BENCH_SMOKE", "") not in {"", "0"}
LATTICE = "policy-120-96-8"
SUBJECTS = 24 if SMOKE else 96
DATASETS = 16 if SMOKE else 48
EVENTS = 2_000 if SMOKE else 20_000
REVOKE_EVERY = 250
SEED = 2022
REPETITIONS = 2 if SMOKE else 3


def _replay_on(backend: str):
    """Best-of-N replay of the identical scenario on one backend."""
    best = None
    for _ in range(REPETITIONS):
        universe = scenario_universe(
            get_lattice(LATTICE), subjects=SUBJECTS, datasets=DATASETS, seed=SEED
        )
        events = policy_traffic(
            universe, events=EVENTS, revoke_every=REVOKE_EVERY, seed=SEED
        )
        engine = PolicyEngine(universe, backend=backend)
        assert engine.backend == backend, engine.fallback_reason
        report = replay(engine, events)
        if best is None or report.checks_per_sec > best.checks_per_sec:
            best = report
    return best


def test_policy_throughput_packed_beats_graph(record_json):
    lattice = get_lattice(LATTICE)
    assert lattice.principal_count >= 200, lattice.principal_count

    packed = _replay_on("packed")
    graph = _replay_on("graph")

    # Decisions are the product; they must not depend on the backend.
    assert packed.decision_log() == graph.decision_log()
    assert packed.denies > 0 and packed.permits > 0, (
        "the scenario mix should exercise both verdicts"
    )

    speedup = packed.checks_per_sec / graph.checks_per_sec
    record_json(
        "BENCH_policy.json",
        {
            "throughput": {
                "lattice": LATTICE,
                "principals": lattice.principal_count,
                "subjects": SUBJECTS,
                "datasets": DATASETS,
                "events": EVENTS,
                "smoke": SMOKE,
                "speedup": speedup,
                "packed": packed.as_dict(),
                "graph": graph.as_dict(),
            }
        },
    )
    print(
        f"\npolicy throughput ({lattice.principal_count} principals): "
        f"packed {packed.checks_per_sec:,.0f} vs graph "
        f"{graph.checks_per_sec:,.0f} checks/sec ({speedup:.2f}x)\n"
        f"packed latency: {packed.as_dict()['latency_us']}\n"
        f"graph  latency: {graph.as_dict()['latency_us']}"
    )
    # The hard gate: the packed decision path must win at policy scale.
    assert speedup > 1.0, (
        f"packed backend did not beat graph: {packed.checks_per_sec:,.0f} vs "
        f"{graph.checks_per_sec:,.0f} checks/sec"
    )


def test_policy_compile_scales_with_lineage(record_json):
    """Consent updates recompile only the subject's lineage fan-out."""
    universe = scenario_universe(
        get_lattice(LATTICE), subjects=SUBJECTS, datasets=DATASETS, seed=SEED
    )
    engine = PolicyEngine(universe, backend="packed")
    subject = universe.subjects[0]
    affected = engine.set_grant(subject, universe.lattice.bottom)
    assert 0 < len(affected) <= len(universe.datasets)
    record_json(
        "BENCH_policy.json",
        {
            "regrant": {
                "datasets": len(universe.datasets),
                "recompiled": len(affected),
            }
        },
    )
