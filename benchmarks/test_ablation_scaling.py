"""Ablation A (ours): checker cost versus program size.

Two size knobs: the D2R BFS unrolling factor (longer apply blocks, the knob
a real deployment turns to match the network diameter) and the number of
match-action tables in a synthetic control block (which stresses
T-TblDecl's key x action constraint checking).  The expected shape is
roughly linear growth in the program size -- the analysis is a single pass
over the AST plus a per-table quadratic term that stays small for realistic
key/action counts.
"""

from __future__ import annotations

import time

import pytest

from repro.casestudies.d2r import d2r_source
from repro.synth import wide_table_program
from repro.tool.pipeline import check_source

UNROLL_FACTORS = [1, 2, 4, 8, 16, 32]
TABLE_COUNTS = [1, 2, 4, 8, 16]


@pytest.mark.parametrize("steps", UNROLL_FACTORS)
def test_d2r_unrolling(benchmark, steps):
    source = d2r_source(secure=True, bfs_steps=steps)
    report = benchmark(check_source, source)
    assert report.ok


@pytest.mark.parametrize("tables", TABLE_COUNTS)
def test_wide_tables(benchmark, tables):
    source = wide_table_program(tables=tables, actions_per_table=4, keys_per_table=2)
    report = benchmark(check_source, source)
    assert report.ok


def _median_ms(source: str, repetitions: int = 7) -> float:
    samples = []
    for _ in range(repetitions):
        start = time.perf_counter()
        check_source(source)
        samples.append((time.perf_counter() - start) * 1000.0)
    samples.sort()
    return samples[len(samples) // 2]


def test_scaling_series(benchmark, record_table):
    lines = ["Ablation A: full-pipeline checking time vs program size", ""]

    def measure_both_series():
        d2r = {}
        for steps in UNROLL_FACTORS:
            d2r[steps] = _median_ms(d2r_source(secure=True, bfs_steps=steps))
        wide = {}
        for tables in TABLE_COUNTS:
            wide[tables] = _median_ms(
                wide_table_program(tables=tables, actions_per_table=4, keys_per_table=2)
            )
        return d2r, wide

    d2r_times, table_times = benchmark.pedantic(measure_both_series, rounds=1, iterations=1)

    lines.append("D2R BFS unrolling (apply-block length):")
    lines.append(f"{'steps':>8} {'source lines':>14} {'time (ms)':>12}")
    for steps in UNROLL_FACTORS:
        source = d2r_source(secure=True, bfs_steps=steps)
        lines.append(
            f"{steps:>8} {len(source.splitlines()):>14} {d2r_times[steps]:>12.2f}"
        )

    lines.append("")
    lines.append("Synthetic wide control block (tables x 4 actions x 2 keys):")
    lines.append(f"{'tables':>8} {'source lines':>14} {'time (ms)':>12}")
    for tables in TABLE_COUNTS:
        source = wide_table_program(tables=tables, actions_per_table=4, keys_per_table=2)
        lines.append(
            f"{tables:>8} {len(source.splitlines()):>14} {table_times[tables]:>12.2f}"
        )

    record_table("ablation_program_size.txt", "\n".join(lines))

    # Shape: growth stays near-linear -- a 32x larger apply block should not
    # cost more than ~96x (3x slack over linear), and must cost more than 1x.
    assert d2r_times[32] > d2r_times[1]
    assert d2r_times[32] < d2r_times[1] * 96
    assert table_times[16] > table_times[1]
    assert table_times[16] < table_times[1] * 48
