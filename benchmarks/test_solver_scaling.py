"""Solver scaling: SCC-condensed scheduling vs the seed worklist, at 10k+.

The synthesised stress programs (:func:`repro.synth.deep_dataflow_program`
and :func:`repro.synth.scc_cycle_program`) yield constraint systems of
10,000+ constraints.  This suite asserts the structural claims that make
the new solver scale -- not just wall time, which shared CI runners make
noisy:

* the SCC-condensed scheduler performs **strictly fewer worklist pops**
  than the seed's single global worklist on the same (deduplicated) edges;
* acyclic systems converge in exactly one pass per component;
* iteration is confined to genuine cycles (``max_passes`` > 1 only there);
* an incremental :meth:`repro.inference.Solver.resolve` after a
  single-slot edit visits only the edit's cone of influence, and produces
  the same assignment as a from-scratch solve.

Set ``P4BID_SOLVER_BENCH_SMOKE=1`` to run the same assertions at reduced
size (the CI smoke job does this so solver regressions fail fast); the
10k-constraint floor is only asserted at full size.  The packed-backend
ops/sec curve (:func:`test_packed_backend_scaling_curve`) runs 10k and
100k tiers by default and adds the 1M tier when
``P4BID_SOLVER_BENCH_FULL=1`` is set (generation plus graph construction
at 1M takes about a minute, so the full curve is opt-in).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.frontend.parser import parse_program
from repro.inference import (
    Constraint,
    ConstTerm,
    Solver,
    VarSupply,
    VarTerm,
    generate_constraints,
    solve,
    solve_worklist,
)
from repro.inference.graph import PropagationGraph
from repro.inference.packed import solve_packed
from repro.lattice.registry import get_lattice
from repro.lattice.two_point import TwoPointLattice
from repro.synth import deep_dataflow_program, mega_constraint_system, scc_cycle_program

SMOKE = os.environ.get("P4BID_SOLVER_BENCH_SMOKE", "") not in {"", "0"}
FULL = os.environ.get("P4BID_SOLVER_BENCH_FULL", "") not in {"", "0"}
#: Sized so each system comfortably clears 10,000 constraints at full size.
DEEP_DEPTH = 400 if SMOKE else 10_500
CYCLE_COUNT = 80 if SMOKE else 1_700
CYCLE_LENGTH = 5
CONSTRAINT_FLOOR = 0 if SMOKE else 10_000

#: Packed-curve tiers: (constraints, timing repetitions).  Single-shot
#: timings on shared runners vary by 2-3x, so every number reported is the
#: minimum over several repetitions of the *solve stage only* (the graph is
#: prebuilt, the packed system warm; encode cost is reported separately).
if SMOKE:
    PACKED_TIERS = [(2_000, 7)]
elif FULL:
    PACKED_TIERS = [(10_000, 7), (100_000, 5), (1_000_000, 2)]
else:
    PACKED_TIERS = [(10_000, 7), (100_000, 5)]


def _system(source: str):
    lattice = TwoPointLattice()
    generation = generate_constraints(parse_program(source), lattice)
    assert not generation.errors
    return lattice, generation.constraints


def _timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, (time.perf_counter() - start) * 1000.0


@pytest.fixture(scope="module")
def deep_system():
    return _system(deep_dataflow_program(DEEP_DEPTH))


@pytest.fixture(scope="module")
def cycle_system():
    return _system(scc_cycle_program(CYCLE_COUNT, CYCLE_LENGTH))


def _bench_entry(solution, ms):
    """pytest-agnostic numbers for the ``BENCH_solver.json`` artefact."""
    return {
        "pops": solution.iterations,
        "ms": round(ms, 3),
        "pops_per_sec": round(solution.iterations / (ms / 1000.0), 1) if ms else None,
    }


def test_deep_chain_scc_beats_worklist(deep_system, record_table, record_json):
    """Acyclic 10k-edge chain: one pass, strictly fewer pops than the seed."""
    lattice, constraints = deep_system
    assert len(constraints) >= CONSTRAINT_FLOOR
    scc, scc_ms = _timed(solve, lattice, constraints)
    seed, seed_ms = _timed(solve_worklist, lattice, constraints)

    assert scc.ok and seed.ok
    for var in seed.assignment:
        assert lattice.equal(scc.value_of(var), seed.value_of(var))
    assert scc.iterations < seed.iterations, (
        f"SCC scheduling should pop strictly fewer edges: "
        f"{scc.iterations} vs {seed.iterations}"
    )
    # An acyclic condensation is solved in a single pass per component:
    # exactly one pop per edge, and no component iterates.
    assert scc.stats.cyclic_scc_count == 0
    assert scc.stats.max_passes == 1
    assert scc.iterations == scc.stats.edge_count

    record_table(
        "solver_scaling_deep.txt",
        "\n".join(
            [
                f"Deep dataflow chain (depth {DEEP_DEPTH}, "
                f"{len(constraints)} constraints)",
                f"{'Solver':<24} {'pops':>10} {'ms':>10}",
                f"{'seed worklist':<24} {seed.iterations:>10d} {seed_ms:>10.1f}",
                f"{'SCC-condensed':<24} {scc.iterations:>10d} {scc_ms:>10.1f}",
                f"SCCs: {scc.stats.scc_count} "
                f"(cyclic {scc.stats.cyclic_scc_count}, "
                f"largest {scc.stats.largest_scc})",
            ]
        ),
    )
    record_json(
        "BENCH_solver.json",
        {
            "deep_chain": {
                "smoke": SMOKE,
                "depth": DEEP_DEPTH,
                "constraints": len(constraints),
                "sccs": scc.stats.scc_count,
                "scc_condensed": _bench_entry(scc, scc_ms),
                "seed_worklist": _bench_entry(seed, seed_ms),
            }
        },
    )


def test_cycle_program_confines_iteration(cycle_system, record_table, record_json):
    """Ring-structured SCCs: iteration stays local, pops stay below seed."""
    lattice, constraints = cycle_system
    assert len(constraints) >= CONSTRAINT_FLOOR
    scc, scc_ms = _timed(solve, lattice, constraints)
    seed, seed_ms = _timed(solve_worklist, lattice, constraints)

    assert scc.ok and seed.ok
    for var in seed.assignment:
        assert lattice.equal(scc.value_of(var), seed.value_of(var))
    assert scc.iterations < seed.iterations
    # Every ring is recognised as one cyclic component of the right size,
    # and only those components iterate (a second sweep to confirm the
    # fixpoint -- never a global restart).
    assert scc.stats.cyclic_scc_count == CYCLE_COUNT
    assert scc.stats.largest_scc == CYCLE_LENGTH
    assert scc.stats.max_passes >= 2

    record_table(
        "solver_scaling_cycles.txt",
        "\n".join(
            [
                f"SCC rings ({CYCLE_COUNT} cycles x {CYCLE_LENGTH} fields, "
                f"{len(constraints)} constraints)",
                f"{'Solver':<24} {'pops':>10} {'ms':>10}",
                f"{'seed worklist':<24} {seed.iterations:>10d} {seed_ms:>10.1f}",
                f"{'SCC-condensed':<24} {scc.iterations:>10d} {scc_ms:>10.1f}",
                f"SCCs: {scc.stats.scc_count} "
                f"(cyclic {scc.stats.cyclic_scc_count}, "
                f"largest {scc.stats.largest_scc}), "
                f"max passes {scc.stats.max_passes}",
            ]
        ),
    )
    record_json(
        "BENCH_solver.json",
        {
            "scc_rings": {
                "smoke": SMOKE,
                "cycles": CYCLE_COUNT,
                "cycle_length": CYCLE_LENGTH,
                "constraints": len(constraints),
                "max_passes": scc.stats.max_passes,
                "scc_condensed": _bench_entry(scc, scc_ms),
                "seed_worklist": _bench_entry(seed, seed_ms),
            }
        },
    )


def test_incremental_resolve_visits_only_the_cone(record_table, record_json):
    """A single-slot edit near the tail re-visits only its cone of influence."""
    lattice = TwoPointLattice()
    supply = VarSupply()
    length = DEEP_DEPTH
    variables = [supply.fresh(f"v{i}") for i in range(length)]
    constraints = [Constraint(ConstTerm("low"), VarTerm(variables[0]))]
    constraints += [
        Constraint(VarTerm(variables[i - 1]), VarTerm(variables[i]))
        for i in range(1, length)
    ]

    solver = Solver(lattice, constraints)
    full = solver.solve()
    assert full.ok
    full_visits = full.stats.edges_visited
    assert full_visits == len(solver.graph.edges)

    tail = 50
    edited = variables[length - tail]
    incremental = solver.resolve({edited: "high"})
    # The cone of the edited slot is the suffix of the chain: `tail`
    # variables, one in-edge each.
    assert incremental.stats.edges_visited == tail
    assert incremental.stats.edges_visited < full_visits

    scratch = solve(
        lattice,
        constraints + [Constraint(ConstTerm("high"), VarTerm(edited))],
    )
    for var in variables:
        assert lattice.equal(incremental.value_of(var), scratch.value_of(var))

    # Reverting the edit lowers the cone back down -- still cone-local.
    reverted = solver.resolve({edited: None})
    assert reverted.stats.edges_visited == tail
    for var in variables:
        assert lattice.equal(reverted.value_of(var), full.value_of(var))

    record_table(
        "solver_incremental.txt",
        "\n".join(
            [
                f"Incremental re-solve on a {length}-variable chain",
                f"full solve edge visits:        {full_visits}",
                f"single-slot edit edge visits:  {incremental.stats.edges_visited}",
                f"(cone of influence = {tail} slots)",
            ]
        ),
    )
    record_json(
        "BENCH_solver.json",
        {
            "incremental_resolve": {
                "smoke": SMOKE,
                "chain_length": length,
                "full_edge_visits": full_visits,
                "incremental_edge_visits": incremental.stats.edges_visited,
                "cone_size": tail,
                "full_solve_ms": round(full.stats.solve_ms, 3),
                "incremental_solve_ms": round(incremental.stats.solve_ms, 3),
            }
        },
    )


def test_unsat_core_extraction_scales(record_table, record_json):
    """A leaky 10k-chain still yields a complete source-to-sink core fast."""
    depth = DEEP_DEPTH // 2
    lattice, constraints = _system(
        deep_dataflow_program(depth, sink_level="low")
    )
    solution, ms = _timed(solve, lattice, constraints)
    assert not solution.ok
    (conflict,) = solution.conflicts
    # The core walks the whole chain back from the low sink to the high
    # seed: depth propagation constraints (plus the seeding assignment).
    assert len(conflict.core) >= depth
    record_table(
        "solver_unsat_core.txt",
        f"Unsat core over a {depth}-deep leak: {len(conflict.core)} "
        f"constraint(s) in {ms:.1f} ms",
    )
    record_json(
        "BENCH_solver.json",
        {
            "unsat_core": {
                "smoke": SMOKE,
                "depth": depth,
                "constraints": len(constraints),
                "core_size": len(conflict.core),
                "ms": round(ms, 3),
            }
        },
    )


def _min_of(repetitions, fn, *args, **kwargs):
    """(best result, best ms): minimum wall time over ``repetitions`` runs."""
    best = None
    best_ms = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        ms = (time.perf_counter() - start) * 1000.0
        if ms < best_ms:
            best, best_ms = result, ms
    return best, best_ms


def test_packed_backend_scaling_curve(record_table, record_json):
    """The bit-packed backend's ops/sec curve, 10k to 1M constraints.

    Per tier: one mega-scale synthetic system, one prebuilt propagation
    graph, then min-of-N timings of the object (graph) backend vs the warm
    packed backend.  Asserts the packed backend is never slower than the
    graph backend at any tier, clears a 5x speedup at the 100k tier, and
    produces the identical least solution everywhere.
    """
    lattice = get_lattice("diamond")
    curve = []
    lines = [
        f"Packed backend scaling curve ({'smoke' if SMOKE else 'full' if FULL else 'default'})",
        f"{'constraints':>12} {'graph ms':>10} {'packed ms':>10} {'speedup':>8} "
        f"{'packed ops/s':>13} {'encode ms':>10}",
    ]
    for n_constraints, repetitions in PACKED_TIERS:
        constraints, _ = mega_constraint_system(
            n_constraints, lattice, seed=11, chains=64, cycle_every=97
        )
        graph = PropagationGraph(lattice, constraints)
        # Cold packed solve: pays codec construction + edge compilation, and
        # leaves the PackedSystem cached on the graph for the warm timings.
        cold, cold_ms = _min_of(1, solve_packed, lattice, graph=graph)
        assert cold.stats.backend == "packed", cold.stats.fallback_reason

        graph_solution, graph_ms = _min_of(repetitions, graph.solve)
        packed_solution, packed_ms = _min_of(
            repetitions, solve_packed, lattice, graph=graph
        )
        assert packed_solution.assignment == graph_solution.assignment
        assert packed_solution.ok and graph_solution.ok

        speedup = graph_ms / packed_ms if packed_ms else float("inf")
        edges = len(graph.edges)
        ops_per_sec = edges / (packed_ms / 1000.0) if packed_ms else None
        stats = packed_solution.stats
        curve.append(
            {
                "constraints": n_constraints,
                "edges": edges,
                "repetitions": repetitions,
                "graph_ms": round(graph_ms, 3),
                "packed_ms": round(packed_ms, 3),
                "packed_cold_ms": round(cold_ms, 3),
                "encode_ms": round(stats.encode_ms, 3),
                "speedup": round(speedup, 2),
                "ops_per_sec": round(ops_per_sec, 1) if ops_per_sec else None,
                "sweeps": stats.sweeps,
                "clusters": stats.clusters,
                "waves": stats.waves,
                "max_wave_width": stats.max_wave_width,
                "workers": stats.workers,
            }
        )
        lines.append(
            f"{n_constraints:>12,} {graph_ms:>10.1f} {packed_ms:>10.1f} "
            f"{speedup:>7.1f}x {ops_per_sec:>13,.0f} {stats.encode_ms:>10.1f}"
        )
        # The CI gate: warm packed must never lose to the object backend
        # (1.1 tolerance absorbs scheduler jitter on shared runners).
        assert packed_ms <= graph_ms * 1.1, (
            f"packed backend slower than graph at {n_constraints}: "
            f"{packed_ms:.1f} ms vs {graph_ms:.1f} ms"
        )
        if n_constraints >= 100_000:
            assert speedup >= 5.0, (
                f"packed backend must clear 5x at the 100k tier, got {speedup:.1f}x"
            )

    record_table("solver_packed_curve.txt", "\n".join(lines))
    record_json(
        "BENCH_solver.json",
        {
            "packed_scaling": {
                "smoke": SMOKE,
                "full": FULL,
                "lattice": "diamond",
                "backend": "packed",
                "curve": curve,
            }
        },
    )
